// Operator impls (`+`, `-`, `*`) cannot return Result; overflow here is
// always a scheduling bug, and the documented contract is to trap loudly.
#![allow(clippy::expect_used)]

//! Simulated time.
//!
//! All simulation time is kept in integer **nanoseconds** ([`SimTime`] for
//! instants, [`SimDuration`] for spans). Integer time makes event ordering
//! exact and keeps runs bit-for-bit reproducible across platforms, which the
//! benchmark harness relies on.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; simulated clocks never run
    /// backwards, so this always indicates a scheduling bug.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                // lmp-lint: allow(no-panic) — documented `# Panics` contract;
                // a negative duration means event ordering is already broken.
                .expect("duration_since: earlier instant is in the future"),
        )
    }

    /// Saturating version of [`SimTime::duration_since`]: returns zero when
    /// `earlier` is later than `self`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// # Panics
    /// Panics on negative, NaN, or out-of-range input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0 && s <= u64::MAX as f64 / 1e9,
            "invalid duration: {s}"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by a float factor, rounding to the nearest nanosecond.
    ///
    /// # Panics
    /// Panics on negative, NaN, or overflowing factors.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        let v = self.0 as f64 * factor;
        // lmp-lint: allow(no-panic) — documented `# Panics` contract;
        // operator-style API cannot return Result and a NaN factor is a model
        // bug.
        assert!(
            v.is_finite() && v >= 0.0 && v <= u64::MAX as f64,
            "invalid duration scale: {factor}"
        );
        SimDuration(v.round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                // lmp-lint: allow(no-panic) — Add impl cannot return Result;
                // simulated-time overflow is unrecoverable and ends the run.
                .expect("SimTime overflow: simulation ran too long"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: instant before simulation start"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        // lmp-lint: allow(no-panic) — Add impl cannot return Result;
        // simulated-duration overflow is unrecoverable.
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_nanos(7).as_nanos(), 7);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(100) + SimDuration::from_nanos(50);
        assert_eq!(t.as_nanos(), 150);
        assert_eq!(
            t.duration_since(SimTime::from_nanos(100)).as_nanos(),
            50
        );
        assert_eq!((t - SimDuration::from_nanos(150)).as_nanos(), 0);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(20);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_duration_since(early).as_nanos(), 10);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_backwards_clock() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_nanos(100);
        assert_eq!(d.mul_f64(1.5).as_nanos(), 150);
        assert_eq!(d.mul_f64(0.0).as_nanos(), 0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_nanos(10);
        assert_eq!((d * 3).as_nanos(), 30);
        assert_eq!((d / 4).as_nanos(), 2);
    }
}
