//! Rate and utilization measurement over sliding windows.
//!
//! Links feed their recent utilization into the loaded-latency model, so the
//! window length directly shapes how quickly latency reacts to offered load.

use crate::time::{SimDuration, SimTime};
use crate::units::Bandwidth;
use std::collections::VecDeque;

/// Measures achieved throughput as bytes transferred in a sliding window.
#[derive(Debug, Clone)]
pub struct SlidingRate {
    window: SimDuration,
    samples: VecDeque<(SimTime, u64)>,
    in_window: u64,
}

impl SlidingRate {
    /// A meter with the given window length.
    ///
    /// # Panics
    /// Panics on a zero-length window.
    pub fn new(window: SimDuration) -> Self {
        // lmp-lint: allow(no-panic) — documented `# Panics` ctor precondition;
        // a zero-length window divides by zero.
        assert!(!window.is_zero(), "zero-length rate window");
        SlidingRate {
            window,
            samples: VecDeque::new(),
            in_window: 0,
        }
    }

    /// Record `bytes` moved at time `now`.
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        self.evict(now);
        self.samples.push_back((now, bytes));
        self.in_window += bytes;
    }

    /// Bytes recorded within the window ending at `now`.
    pub fn bytes_in_window(&mut self, now: SimTime) -> u64 {
        self.evict(now);
        self.in_window
    }

    /// Achieved bandwidth over the window ending at `now`.
    pub fn rate(&mut self, now: SimTime) -> Bandwidth {
        let bytes = self.bytes_in_window(now);
        Bandwidth::measured(bytes, self.window)
    }

    fn evict(&mut self, now: SimTime) {
        // Keep samples whose age is at most the window length.
        while let Some(&(t, b)) = self.samples.front() {
            if now.saturating_duration_since(t) > self.window {
                self.samples.pop_front();
                self.in_window -= b;
            } else {
                break;
            }
        }
    }
}

/// Tracks the busy/idle state of a serial resource (a link direction, a DRAM
/// channel) and reports utilization over a sliding window.
///
/// The resource is modelled as busy until `busy_until`; callers extend the
/// busy period as they admit work.
#[derive(Debug, Clone)]
pub struct BusyTracker {
    window: SimDuration,
    /// Completed busy intervals (start, end), oldest first.
    intervals: VecDeque<(SimTime, SimTime)>,
    busy_until: SimTime,
    busy_from: SimTime,
    has_open: bool,
}

impl BusyTracker {
    /// A tracker with the given utilization window.
    ///
    /// # Panics
    /// Panics on a zero-length window.
    pub fn new(window: SimDuration) -> Self {
        // lmp-lint: allow(no-panic) — documented `# Panics` ctor precondition;
        // a zero-length window divides by zero.
        assert!(!window.is_zero(), "zero-length utilization window");
        BusyTracker {
            window,
            intervals: VecDeque::new(),
            busy_until: SimTime::ZERO,
            busy_from: SimTime::ZERO,
            has_open: false,
        }
    }

    /// The earliest instant the resource is free at or after `now`.
    pub fn free_at(&self, now: SimTime) -> SimTime {
        self.busy_until.max(now)
    }

    /// Occupy the resource for `work` starting no earlier than `now`.
    /// Returns the interval `(start, end)` the work occupies.
    pub fn occupy(&mut self, now: SimTime, work: SimDuration) -> (SimTime, SimTime) {
        let start = self.free_at(now);
        let end = start + work;
        if self.has_open && start == self.busy_until {
            // Extend the open interval.
            self.busy_until = end;
        } else {
            if self.has_open {
                self.intervals.push_back((self.busy_from, self.busy_until));
            }
            self.busy_from = start;
            self.busy_until = end;
            self.has_open = true;
        }
        (start, end)
    }

    /// Fraction of the window `[now - window, now]` the resource was busy,
    /// in `[0, 1]`. Busy time scheduled beyond `now` is not counted.
    pub fn utilization(&mut self, now: SimTime) -> f64 {
        let window_start =
            SimTime::from_nanos(now.as_nanos().saturating_sub(self.window.as_nanos()));
        // Evict intervals entirely before the window.
        while let Some(&(_, end)) = self.intervals.front() {
            if end <= window_start {
                self.intervals.pop_front();
            } else {
                break;
            }
        }
        let mut busy = 0u64;
        for &(s, e) in &self.intervals {
            let s = s.max(window_start);
            let e = e.min(now);
            if e > s {
                busy += e.duration_since(s).as_nanos();
            }
        }
        if self.has_open {
            let s = self.busy_from.max(window_start);
            let e = self.busy_until.min(now);
            if e > s {
                busy += e.duration_since(s).as_nanos();
            }
        }
        let span = now
            .duration_since(window_start)
            .as_nanos()
            .min(self.window.as_nanos());
        if span == 0 {
            return 0.0;
        }
        (busy as f64 / span as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }
    fn d(ns: u64) -> SimDuration {
        SimDuration::from_nanos(ns)
    }

    #[test]
    fn sliding_rate_measures_window_only() {
        let mut m = SlidingRate::new(d(100));
        m.record(t(0), 1_000);
        m.record(t(50), 500);
        assert_eq!(m.bytes_in_window(t(60)), 1_500);
        // At t=150 the t=0 sample has aged out (age 150 > 100).
        assert_eq!(m.bytes_in_window(t(150)), 500);
        // At t=151 the t=50 sample is exactly at age 101 > window.
        assert_eq!(m.bytes_in_window(t(151)), 0);
    }

    #[test]
    fn sliding_rate_bandwidth() {
        let mut m = SlidingRate::new(SimDuration::from_secs(1));
        m.record(t(0), 21_000_000_000);
        let r = m.rate(t(10));
        assert!((r.as_gbps() - 21.0).abs() < 1e-6, "{r}");
    }

    #[test]
    fn busy_tracker_serializes_work() {
        let mut b = BusyTracker::new(d(1_000));
        let (s1, e1) = b.occupy(t(0), d(10));
        assert_eq!((s1, e1), (t(0), t(10)));
        // Second job queued behind the first.
        let (s2, e2) = b.occupy(t(5), d(10));
        assert_eq!((s2, e2), (t(10), t(20)));
        // Job after idle gap starts immediately.
        let (s3, _) = b.occupy(t(100), d(10));
        assert_eq!(s3, t(100));
    }

    #[test]
    fn utilization_full_and_idle() {
        let mut b = BusyTracker::new(d(100));
        b.occupy(t(0), d(100));
        assert!((b.utilization(t(100)) - 1.0).abs() < 1e-9);
        // After a long idle stretch utilization decays to 0.
        assert!(b.utilization(t(1_000)) < 1e-9);
    }

    #[test]
    fn utilization_half_busy() {
        let mut b = BusyTracker::new(d(100));
        b.occupy(t(0), d(50));
        let u = b.utilization(t(100));
        assert!((u - 0.5).abs() < 1e-9, "u={u}");
    }

    #[test]
    fn utilization_ignores_future_busy_time() {
        let mut b = BusyTracker::new(d(100));
        b.occupy(t(0), d(1_000)); // busy far into the future
        let u = b.utilization(t(50));
        assert!((u - 1.0).abs() < 1e-9, "u={u}");
    }

    #[test]
    fn utilization_with_gaps() {
        let mut b = BusyTracker::new(d(100));
        b.occupy(t(0), d(20)); // [0,20)
        b.occupy(t(40), d(20)); // [40,60)
        b.occupy(t(80), d(20)); // [80,100)
        let u = b.utilization(t(100));
        assert!((u - 0.6).abs() < 1e-9, "u={u}");
    }

    #[test]
    fn utilization_empty_window_is_zero() {
        let mut b = BusyTracker::new(d(100));
        assert_eq!(b.utilization(t(0)), 0.0);
    }
}
