//! Indexed calendar-queue event kernel.
//!
//! [`CalendarQueue`] replaces the original `BinaryHeap + BTreeSet` pending
//! set (kept as [`crate::queue::reference::BinaryHeapQueue`] for
//! differential testing) with a structure whose steady-state schedule /
//! cancel / pop path performs **zero heap allocations** and no `O(log n)`
//! comparison churn:
//!
//! * **Slab of event cells with a free list.** Every event lives in one
//!   `Cell` of a flat `Vec`; delivered and cancelled cells go back on an
//!   intrusive free list, so steady-state scheduling reuses memory instead
//!   of allocating. Cells never move, so a slab index is a stable handle.
//! * **Calendar buckets for the current "year".** Time is cut into
//!   power-of-two bucket widths; `num_buckets` consecutive buckets form a
//!   year. Events in the current year sit in per-bucket singly-linked
//!   lists kept sorted by `(time, id)`, so FIFO tie-breaking for
//!   same-instant events is exact. With the load factor maintained (see
//!   resize below) a bucket holds O(1) events and insertion is O(1).
//! * **Radix-heap fallback for far-future events.** Events beyond the
//!   current year go to one of 65 radix bands indexed by the highest bit
//!   in which their time differs from the year start. When the calendar
//!   exhausts a year it jumps directly to the earliest far year and drains
//!   only the due bands; re-banding is monotone (a cell's band index never
//!   increases as the year advances), so each event is touched O(64) times
//!   worst case and O(1) in practice — no yearly full scans.
//! * **Lazy load-factor resize.** When the live count leaves the
//!   `[buckets/8, 2*buckets]` window the queue rebuilds its geometry
//!   (bucket count ≈ live count, bucket width ≈ median inter-event gap —
//!   robust against far-future outliers — both rounded to powers of two).
//!   Rebuilds relink cells in place — no event is copied or reallocated —
//!   and are amortized O(1) per operation.
//! * **O(1) cancellation via slab handles.** [`EventId`]s are the same
//!   monotone sequence numbers the reference queue hands out (the
//!   differential tests rely on that); a deterministic open-addressed
//!   id→slot map resolves an id to its cell in O(1). The map's working
//!   set is O(live events) — a dense id-indexed window would instead grow
//!   with the live id *span*, which is unbounded when far-future events
//!   outlive millions of near ones. Cancelling marks the cell dead in
//!   place — it is unlinked and freed when the scan next passes it,
//!   exactly the lazy deletion discipline of the reference queue.
//!
//! Determinism: every decision in this file is a pure function of the
//! pushed `(time, id)` pairs — no hashing, no ambient state — so two
//! same-seed runs produce byte-identical pop sequences on any platform.
//! Scheduling into the "past" relative to the last pop is also supported
//! (the queue has no clock of its own); the calendar rewinds, which is
//! correct but slower than the monotone hot path the [`crate::engine`]
//! guarantees.

use crate::queue::EventId;
use crate::time::SimTime;

/// Null link in the intrusive lists.
const NIL: u32 = u32::MAX;
/// Radix bands: one per possible highest differing bit (1..=64) plus the
/// (unreachable) zero band.
const BANDS: usize = 65;
/// Geometry bounds: 16..=1M buckets, and the year span must leave shift
/// room in a u64 nanosecond timeline.
const MIN_NB_LOG2: u32 = 4;
const MAX_NB_LOG2: u32 = 20;
const MAX_SPAN_LOG2: u32 = 62;
/// "No live event" marker for per-band minima.
const FAR_NONE: (u64, u64) = (u64::MAX, u64::MAX);

/// Key sentinels for [`IdMap`]: ids are push counters, so the top two
/// values are unreachable in any real run.
const MAP_EMPTY: u64 = u64::MAX;
const MAP_TOMB: u64 = u64::MAX - 1;

/// One open-addressing slot, packed so a probe touches one cache line.
#[derive(Clone, Copy)]
struct MapSlot {
    key: u64,
    val: u32,
}

/// Deterministic id→slot map: multiplicative hashing, linear probing,
/// tombstone deletion, amortized rehash. No `RandomState`, no ambient
/// entropy — layout is a pure function of the inserted ids, and nothing
/// ever iterates it, so it cannot perturb pop order or digests.
struct IdMap {
    slots: Vec<MapSlot>,
    mask: u64,
    len: usize,
    tombs: usize,
}

impl IdMap {
    fn new() -> Self {
        IdMap {
            slots: vec![
                MapSlot {
                    key: MAP_EMPTY,
                    val: 0
                };
                32
            ],
            mask: 31,
            len: 0,
            tombs: 0,
        }
    }

    /// Fibonacci-hash probe start; sequential ids scatter uniformly.
    fn start(&self, id: u64) -> u64 {
        let h = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h ^ (h >> 29)) & self.mask
    }

    fn insert(&mut self, id: u64, slot: u32) {
        if (self.len + self.tombs + 1) * 2 > self.slots.len() {
            self.rehash();
        }
        let mut i = self.start(id);
        loop {
            let s = &mut self.slots[i as usize];
            if s.key >= MAP_TOMB {
                if s.key == MAP_TOMB {
                    self.tombs -= 1;
                }
                s.key = id;
                s.val = slot;
                self.len += 1;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn remove(&mut self, id: u64) -> Option<u32> {
        if id >= MAP_TOMB {
            return None;
        }
        let mut i = self.start(id);
        loop {
            let s = self.slots[i as usize];
            if s.key == id {
                self.slots[i as usize].key = MAP_TOMB;
                self.len -= 1;
                self.tombs += 1;
                return Some(s.val);
            }
            if s.key == MAP_EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Rebuild at a capacity sized to the live population, dropping
    /// tombstones. Keeps at least half the table empty, so probe loops
    /// always terminate and stay short.
    fn rehash(&mut self) {
        let cap = (self.len * 3 + 1).next_power_of_two().max(32);
        let old = std::mem::replace(
            &mut self.slots,
            vec![
                MapSlot {
                    key: MAP_EMPTY,
                    val: 0
                };
                cap
            ],
        );
        self.mask = cap as u64 - 1;
        self.tombs = 0;
        for s in old {
            if s.key < MAP_TOMB {
                let mut i = self.start(s.key);
                while self.slots[i as usize].key != MAP_EMPTY {
                    i = (i + 1) & self.mask;
                }
                self.slots[i as usize] = s;
            }
        }
    }
}

/// A far-band entry: the cell's sort key is carried alongside the slot so
/// that re-banding as years advance is pure sequential `Vec` traffic — the
/// slab (random access, cache-hostile at large pending sets) is touched
/// exactly once more, when the event finally becomes due.
#[derive(Clone, Copy)]
struct FarEntry {
    at: u64,
    id: u64,
    slot: u32,
}

/// One slab cell. `next` doubles as the bucket/band chain link while the
/// event is pending and as the free-list link after it dies.
struct Cell<E> {
    /// Event time in nanoseconds.
    at: u64,
    /// The monotone sequence number handed out as [`EventId`].
    id: u64,
    /// Intrusive chain link.
    next: u32,
    /// False once cancelled or delivered.
    live: bool,
    /// The payload; taken at delivery, dropped at cancellation.
    payload: Option<E>,
}

/// A deterministic calendar-queue pending-event set with FIFO tie-breaking
/// and O(1) cancellation. Drop-in replacement for the reference
/// `BinaryHeap` queue: same [`EventId`] sequence, same pop order, same
/// cancel semantics.
pub struct CalendarQueue<E> {
    /// The event-cell slab.
    cells: Vec<Cell<E>>,
    /// Head of the free list threaded through dead cells.
    free_head: u32,
    /// Live id→slot map for O(1) cancellation.
    idmap: IdMap,
    /// Next sequence number / [`EventId`] to hand out.
    next_seq: u64,
    /// Live (scheduled, not cancelled, not delivered) events.
    live: usize,
    /// log2 of the bucket width in nanoseconds.
    width_log2: u32,
    /// log2 of the bucket count.
    nb_log2: u32,
    /// Per-bucket chain heads, sorted by `(at, id)`.
    buckets: Vec<u32>,
    /// Per-bucket chain tails: the overwhelmingly common insert (a new
    /// event at or after everything already in its bucket — ids are
    /// monotone) appends in O(1) instead of walking the tie-run.
    tails: Vec<u32>,
    /// Two-level occupancy bitmap over `buckets` (bit set ⟺ chain
    /// non-empty): the scan jumps to the next occupied bucket with a few
    /// word operations instead of probing empty buckets one by one — the
    /// linear probe is O(buckets/events) per pop when the population is
    /// sparse in its year.
    occ0: Vec<u64>,
    occ1: Vec<u64>,
    /// Current year index: `at >> (width_log2 + nb_log2)`.
    year: u64,
    /// Next bucket to scan within the current year.
    cursor: usize,
    /// Cells currently linked into `buckets` (live or cancelled).
    cal_cells: usize,
    /// Far-future radix bands (unsorted, keys carried in the entries).
    far: Vec<Vec<FarEntry>>,
    /// Per-band minimum `(at, id)`, monotone under inserts, reset on drain.
    /// May be stale-low after a cancellation, which only costs a spurious
    /// (empty) drain — never a missed event.
    far_min: Vec<(u64, u64)>,
    /// Cells currently parked in `far`.
    far_cells: usize,
    /// Reusable scratch for rebuilds.
    scratch: Vec<u32>,
}

// Manual impl: payloads need not be `Debug`, so summarize the queue shape.
impl<E> std::fmt::Debug for CalendarQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarQueue")
            .field("live", &self.live)
            .field("next_seq", &self.next_seq)
            .field("buckets", &self.buckets.len())
            .field("width_ns", &(1u64 << self.width_log2))
            .field("year", &self.year)
            .field("far_cells", &self.far_cells)
            .finish_non_exhaustive()
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Smallest `l` with `2^l >= x` (0 for `x <= 1`).
fn ceil_log2(x: u64) -> u32 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

impl<E> CalendarQueue<E> {
    /// An empty queue with the default (self-tuning) geometry.
    pub fn new() -> Self {
        CalendarQueue {
            cells: Vec::new(),
            free_head: NIL,
            idmap: IdMap::new(),
            next_seq: 0,
            live: 0,
            width_log2: 10,
            nb_log2: MIN_NB_LOG2,
            buckets: vec![NIL; 1 << MIN_NB_LOG2],
            tails: vec![NIL; 1 << MIN_NB_LOG2],
            occ0: vec![0; 1],
            occ1: vec![0; 1],
            year: 0,
            cursor: 0,
            cal_cells: 0,
            far: (0..BANDS).map(|_| Vec::new()).collect(),
            far_min: vec![FAR_NONE; BANDS],
            far_cells: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Current bucket count (for load-factor tests).
    #[doc(hidden)]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn span(&self) -> u32 {
        self.width_log2 + self.nb_log2
    }

    // ------------------------------------------------- occupancy bitmap

    fn occ_set(&mut self, b: usize) {
        self.occ0[b >> 6] |= 1 << (b & 63);
        self.occ1[b >> 12] |= 1 << ((b >> 6) & 63);
    }

    fn occ_clear(&mut self, b: usize) {
        let w = b >> 6;
        self.occ0[w] &= !(1 << (b & 63));
        if self.occ0[w] == 0 {
            self.occ1[w >> 6] &= !(1 << (w & 63));
        }
    }

    /// Size the bitmap to the current bucket count, all-clear.
    fn occ_resize(&mut self) {
        let w0 = (self.buckets.len() + 63) >> 6;
        self.occ0.clear();
        self.occ0.resize(w0, 0);
        let w1 = (w0 + 63) >> 6;
        self.occ1.clear();
        self.occ1.resize(w1, 0);
    }

    /// First occupied bucket at or after `from`, if any.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        if from >= self.buckets.len() {
            return None;
        }
        let w = from >> 6;
        let cur = self.occ0[w] & (!0u64 << (from & 63));
        if cur != 0 {
            return Some((w << 6) + cur.trailing_zeros() as usize);
        }
        // Climb to the summary level for everything past word `w`.
        let start = w + 1;
        let w1 = start >> 6;
        if w1 < self.occ1.len() {
            let cur1 = self.occ1[w1] & (!0u64 << (start & 63));
            if cur1 != 0 {
                let word = (w1 << 6) + cur1.trailing_zeros() as usize;
                return Some((word << 6) + self.occ0[word].trailing_zeros() as usize);
            }
            for wi in (w1 + 1)..self.occ1.len() {
                if self.occ1[wi] != 0 {
                    let word = (wi << 6) + self.occ1[wi].trailing_zeros() as usize;
                    return Some((word << 6) + self.occ0[word].trailing_zeros() as usize);
                }
            }
        }
        None
    }

    fn bucket_index(&self, at: u64) -> usize {
        ((at >> self.width_log2) & (self.buckets.len() as u64 - 1)) as usize
    }

    /// Schedule `payload` to fire at `at`. Returns an id usable with
    /// [`CalendarQueue::cancel`]. Steady state (slab warm, geometry
    /// stable) performs no heap allocation.
    pub fn push(&mut self, at: SimTime, payload: E) -> EventId {
        let id = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let slot = self.alloc_cell(at.as_nanos(), id, payload);
        self.idmap.insert(id, slot);
        self.live += 1;
        self.place(slot);
        if self.live > self.buckets.len() << 1 && self.nb_log2 < MAX_NB_LOG2 {
            self.rebuild();
        }
        EventId(id)
    }

    /// Cancel a previously scheduled event in O(1). Returns `true` if the
    /// event was still pending (it will never be delivered), `false` if it
    /// already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.idmap.remove(id.0) {
            None => false,
            Some(slot) => {
                let cell = &mut self.cells[slot as usize];
                cell.live = false;
                cell.payload = None;
                self.live -= 1;
                true
            }
        }
    }

    /// Remove and return the earliest live event as `(time, id, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        let slot = self.settle()?;
        let b = self.cursor;
        self.buckets[b] = self.cells[slot as usize].next;
        if self.buckets[b] == NIL {
            self.tails[b] = NIL;
            self.occ_clear(b);
        }
        self.cal_cells -= 1;
        let cell = &mut self.cells[slot as usize];
        let (at, id) = (cell.at, cell.id);
        let payload = cell.payload.take();
        self.idmap.remove(id);
        self.live -= 1;
        self.free_cell(slot);
        if (self.live << 3) < self.buckets.len() && self.nb_log2 > MIN_NB_LOG2 {
            self.rebuild();
        }
        payload.map(|p| (SimTime::from_nanos(at), EventId(id), p))
    }

    /// The timestamp of the earliest live event, without removing it.
    /// (`&mut` because dead cells are garbage-collected along the way,
    /// like the reference queue's lazy-deletion peek.)
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let slot = self.settle()?;
        Some(SimTime::from_nanos(self.cells[slot as usize].at))
    }

    // ------------------------------------------------------------- slab

    fn alloc_cell(&mut self, at: u64, id: u64, payload: E) -> u32 {
        if self.free_head != NIL {
            let slot = self.free_head;
            let cell = &mut self.cells[slot as usize];
            self.free_head = cell.next;
            cell.at = at;
            cell.id = id;
            cell.next = NIL;
            cell.live = true;
            cell.payload = Some(payload);
            slot
        } else {
            // Slab growth: amortized, and bounded at 2^32 - 1 concurrent
            // cells (the NIL sentinel) — ~170 GiB of cells, far past any
            // realistic pending-set size.
            let slot = self.cells.len() as u32;
            self.cells.push(Cell {
                at,
                id,
                next: NIL,
                live: true,
                payload: Some(payload),
            });
            slot
        }
    }

    fn free_cell(&mut self, slot: u32) {
        let cell = &mut self.cells[slot as usize];
        cell.live = false;
        cell.payload = None;
        cell.next = self.free_head;
        self.free_head = slot;
    }

    // --------------------------------------------------------- placement

    /// Link a freshly filled (or re-homed) cell into the calendar or the
    /// far bands, rewinding the calendar if the event lands behind it.
    fn place(&mut self, slot: u32) {
        let at = self.cells[slot as usize].at;
        let y = at >> self.span();
        if y > self.year {
            self.far_push(slot);
            return;
        }
        if y < self.year {
            self.rewind_to(y, at);
        } else {
            let b = self.bucket_index(at);
            if b < self.cursor {
                self.cursor = b;
            }
        }
        self.bucket_insert(slot);
    }

    /// Sorted insert into the event's bucket chain; stable on `(at, id)`
    /// so same-instant events keep FIFO order. The common case — a new
    /// event sorting at or after everything in its bucket — appends at
    /// the tail in O(1); only out-of-order inserts walk the chain.
    fn bucket_insert(&mut self, slot: u32) {
        let (at, id) = {
            let c = &self.cells[slot as usize];
            (c.at, c.id)
        };
        let b = self.bucket_index(at);
        self.occ_set(b);
        let tail = self.tails[b];
        if tail == NIL {
            self.cells[slot as usize].next = NIL;
            self.buckets[b] = slot;
            self.tails[b] = slot;
            self.cal_cells += 1;
            return;
        }
        let t = &self.cells[tail as usize];
        if (t.at, t.id) < (at, id) {
            self.cells[slot as usize].next = NIL;
            self.cells[tail as usize].next = slot;
            self.tails[b] = slot;
            self.cal_cells += 1;
            return;
        }
        let mut prev = NIL;
        let mut cur = self.buckets[b];
        while cur != NIL {
            let c = &self.cells[cur as usize];
            if c.at > at || (c.at == at && c.id > id) {
                break;
            }
            prev = cur;
            cur = c.next;
        }
        self.cells[slot as usize].next = cur;
        if prev == NIL {
            self.buckets[b] = slot;
        } else {
            self.cells[prev as usize].next = slot;
        }
        self.cal_cells += 1;
    }

    /// Band index for a far-future event: highest bit in which its time
    /// differs from the current year start.
    fn far_band(&self, at: u64) -> usize {
        let year_start = self.year << self.span();
        (64 - (at ^ year_start).leading_zeros()) as usize
    }

    /// Park a cell in the far bands. Only called with the cell freshly
    /// written or just unlinked, so the slab read here is cache-hot.
    fn far_push(&mut self, slot: u32) {
        let c = &self.cells[slot as usize];
        let e = FarEntry {
            at: c.at,
            id: c.id,
            slot,
        };
        self.far_entry_push(e);
    }

    /// Re-band an entry without touching the slab.
    fn far_entry_push(&mut self, e: FarEntry) {
        let b = self.far_band(e.at);
        self.far[b].push(e);
        self.far_cells += 1;
        if (e.at, e.id) < self.far_min[b] {
            self.far_min[b] = (e.at, e.id);
        }
    }

    /// The queue has no clock, so pushing behind the calendar is legal:
    /// pull the year back to the new event and park the (now future)
    /// calendar contents in the far bands.
    fn rewind_to(&mut self, y: u64, at: u64) {
        self.year = y;
        self.cursor = self.bucket_index(at);
        if self.cal_cells == 0 {
            return;
        }
        for b in 0..self.buckets.len() {
            let mut h = self.buckets[b];
            self.buckets[b] = NIL;
            self.tails[b] = NIL;
            while h != NIL {
                let next = self.cells[h as usize].next;
                self.cal_cells -= 1;
                if self.cells[h as usize].live {
                    self.far_push(h);
                } else {
                    self.free_cell(h);
                }
                h = next;
            }
        }
        for w in &mut self.occ0 {
            *w = 0;
        }
        for w in &mut self.occ1 {
            *w = 0;
        }
    }

    // -------------------------------------------------------- the scan

    /// Advance to the slot holding the earliest live event, cleaning dead
    /// cells and rolling years as needed. Leaves `cursor` on that event's
    /// bucket with the event at the chain head. `None` iff no live events.
    fn settle(&mut self) -> Option<u32> {
        if self.live == 0 {
            return None;
        }
        loop {
            if self.cal_cells == 0 {
                if !self.advance_year() {
                    // Unreachable while the linkage invariant holds (every
                    // live cell is in a bucket or band); kept as a
                    // recoverable exit rather than a panic.
                    return None;
                }
                continue;
            }
            while self.cal_cells > 0 {
                let b = match self.next_occupied(self.cursor) {
                    Some(b) => b,
                    None => break,
                };
                self.cursor = b;
                loop {
                    let h = self.buckets[b];
                    if h == NIL {
                        break;
                    }
                    if self.cells[h as usize].live {
                        return Some(h);
                    }
                    self.buckets[b] = self.cells[h as usize].next;
                    self.cal_cells -= 1;
                    self.free_cell(h);
                }
                // The chain was all dead cells — now empty.
                self.tails[b] = NIL;
                self.occ_clear(b);
            }
            if self.cal_cells > 0 {
                // Defensive: a linked cell behind the cursor (cannot occur
                // — pushes rewind the cursor). Rescan rather than panic.
                self.cursor = 0;
                continue;
            }
            if !self.advance_year() {
                return None;
            }
        }
    }

    /// Calendar exhausted: jump straight to the earliest far year and
    /// drain the bands that may hold events of that year. Returns `false`
    /// when no far events exist at all.
    fn advance_year(&mut self) -> bool {
        let mut best = FAR_NONE;
        for &m in &self.far_min {
            if m < best {
                best = m;
            }
        }
        if best == FAR_NONE {
            return false;
        }
        let y = best.0 >> self.span();
        self.year = y;
        let mut first_bucket = self.buckets.len();
        for b in 0..BANDS {
            if self.far[b].is_empty() || self.far_min[b].0 >> self.span() > y {
                continue;
            }
            let mut band = std::mem::take(&mut self.far[b]);
            self.far_min[b] = FAR_NONE;
            self.far_cells -= band.len();
            for e in band.drain(..) {
                if e.at >> self.span() == y {
                    // Due this year: the one slab touch of the entry's
                    // banded life — liveness check, then link (or free a
                    // cell cancelled while parked).
                    if self.cells[e.slot as usize].live {
                        let bk = self.bucket_index(e.at);
                        if bk < first_bucket {
                            first_bucket = bk;
                        }
                        self.bucket_insert(e.slot);
                    } else {
                        self.free_cell(e.slot);
                    }
                } else {
                    // Still future: re-band against the new year start
                    // from the carried key — no slab access. Band indices
                    // only ever decrease as the year advances, so this
                    // terminates and amortizes.
                    self.far_entry_push(e);
                }
            }
            // Hand the drained allocation back unless re-banding already
            // repopulated this band.
            if self.far[b].is_empty() {
                self.far[b] = band;
            }
        }
        self.cursor = if first_bucket < self.buckets.len() {
            first_bucket
        } else {
            0
        };
        true
    }

    // ----------------------------------------------------------- resize

    /// Relink every live cell under a new geometry sized to the live
    /// population: bucket count ≈ live count, bucket width ≈ median
    /// inter-event gap. Cells stay in place; only the chain links change.
    fn rebuild(&mut self) {
        let mut slots = std::mem::take(&mut self.scratch);
        slots.clear();
        for b in 0..self.buckets.len() {
            let mut h = self.buckets[b];
            self.buckets[b] = NIL;
            while h != NIL {
                let next = self.cells[h as usize].next;
                if self.cells[h as usize].live {
                    slots.push(h);
                } else {
                    self.free_cell(h);
                }
                h = next;
            }
        }
        self.cal_cells = 0;
        for b in 0..BANDS {
            let mut band = std::mem::take(&mut self.far[b]);
            self.far_min[b] = FAR_NONE;
            for e in band.drain(..) {
                if self.cells[e.slot as usize].live {
                    slots.push(e.slot);
                } else {
                    self.free_cell(e.slot);
                }
            }
            self.far[b] = band;
        }
        self.far_cells = 0;

        let n = slots.len() as u64;
        if n == 0 {
            self.nb_log2 = MIN_NB_LOG2;
            self.buckets.clear();
            self.buckets.resize(1 << self.nb_log2, NIL);
            self.tails.clear();
            self.tails.resize(1 << self.nb_log2, NIL);
            self.occ_resize();
            self.cursor = 0;
            self.scratch = slots;
            return;
        }
        // Sort by (at, id): gives the minimum, the gap distribution, and
        // an O(1) tail-append relink below.
        slots.sort_unstable_by_key(|&s| {
            let c = &self.cells[s as usize];
            (c.at, c.id)
        });
        let min_at = self.cells[slots[0] as usize].at;
        self.nb_log2 = ceil_log2(n).clamp(MIN_NB_LOG2, MAX_NB_LOG2);
        // Bucket width from the MEDIAN inter-event gap. The mean
        // (span / n) lets a single far-future outlier stretch the width
        // until the whole near-time population shares one bucket and the
        // sorted insert degrades to O(n) per push; the median ignores
        // outliers and keeps the dense region at ~1 event per bucket.
        let mut gaps: Vec<u64> = slots
            .windows(2)
            .map(|w| self.cells[w[1] as usize].at - self.cells[w[0] as usize].at)
            .collect();
        let gap = if gaps.is_empty() {
            1
        } else {
            let mid = gaps.len() / 2;
            let (_, g, _) = gaps.select_nth_unstable(mid);
            (*g).max(1)
        };
        self.width_log2 = ceil_log2(gap).min(MAX_SPAN_LOG2 - self.nb_log2);
        self.buckets.clear();
        self.buckets.resize(1 << self.nb_log2, NIL);
        self.tails.clear();
        self.tails.resize(1 << self.nb_log2, NIL);
        self.occ_resize();
        self.year = min_at >> self.span();
        self.cursor = self.bucket_index(min_at);
        // Ascending (at, id) order: every insert lands at its bucket's
        // tail, so the relink is O(1) per cell.
        for &s in slots.iter() {
            let at = self.cells[s as usize].at;
            if at >> self.span() == self.year {
                self.bucket_insert(s);
            } else {
                self.far_push(s);
            }
        }
        self.scratch = slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn drain<E>(q: &mut CalendarQueue<E>) -> Vec<(u64, E)> {
        std::iter::from_fn(|| q.pop().map(|(at, _, p)| (at.as_nanos(), p))).collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        let order: Vec<_> = drain(&mut q).into_iter().map(|(_, p)| p).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = CalendarQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        let order: Vec<_> = drain(&mut q).into_iter().map(|(_, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn far_future_outliers_deliver_in_order() {
        let mut q = CalendarQueue::new();
        q.push(t(1 << 40), "far");
        q.push(t(5), "near");
        q.push(t(1 << 55), "farther");
        q.push(t((1 << 40) + 1), "far+1");
        let order: Vec<_> = drain(&mut q);
        assert_eq!(
            order,
            [
                (5, "near"),
                (1 << 40, "far"),
                ((1 << 40) + 1, "far+1"),
                (1 << 55, "farther")
            ]
        );
    }

    #[test]
    fn non_monotone_push_after_pop_rewinds() {
        // The queue has no clock: pushing earlier than everything already
        // delivered or pending must still pop in global (at, id) order.
        let mut q = CalendarQueue::new();
        q.push(t(1_000_000), "late");
        q.push(t(2_000_000), "later");
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("late"));
        q.push(t(3), "rewound");
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("rewound"));
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("later"));
    }

    #[test]
    fn cancel_prevents_delivery_and_double_cancel_is_false() {
        let mut q = CalendarQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel must report false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_of_delivered_id_is_false() {
        let mut q = CalendarQueue::new();
        let a = q.push(t(1), "a");
        assert!(q.pop().is_some());
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: CalendarQueue<()> = CalendarQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn cancel_then_pop_at_same_instant_keeps_fifo() {
        // Five events at one instant; cancel the 1st and 3rd; the pops
        // must deliver 2nd, 4th, 5th in schedule order.
        let mut q = CalendarQueue::new();
        let ids: Vec<_> = (0..5).map(|i| q.push(t(77), i)).collect();
        assert!(q.cancel(ids[0]));
        assert!(q.cancel(ids[2]));
        let order: Vec<_> = drain(&mut q).into_iter().map(|(_, p)| p).collect();
        assert_eq!(order, [1, 3, 4]);
    }

    #[test]
    fn bucket_resize_mid_stream_preserves_fifo_ties() {
        // Push enough same-instant events to cross the grow threshold
        // (live > 2 * buckets) several times mid-stream, interleaved with
        // other instants; FIFO ties and global order must survive the
        // relink.
        let mut q = CalendarQueue::new();
        let before = q.bucket_count();
        for i in 0..200u32 {
            q.push(t(500), i);
            q.push(t(100 + (i as u64 % 7)), 1_000 + i);
        }
        assert!(q.bucket_count() > before, "grow resize never triggered");
        let popped = drain(&mut q);
        // Same-instant runs must be in push (id) order.
        let at_500: Vec<_> = popped
            .iter()
            .filter(|(at, _)| *at == 500)
            .map(|&(_, p)| p)
            .collect();
        assert_eq!(at_500, (0..200).collect::<Vec<_>>());
        let mut sorted = popped.clone();
        sorted.sort_by_key(|&(at, p)| (at, p >= 1_000, p));
        // Global order: non-decreasing times throughout.
        let times: Vec<_> = popped.iter().map(|&(at, _)| at).collect();
        let mut tsorted = times.clone();
        tsorted.sort_unstable();
        assert_eq!(times, tsorted);
    }

    #[test]
    fn shrink_resize_keeps_remaining_events() {
        let mut q = CalendarQueue::new();
        let mut keep = Vec::new();
        for i in 0..4_096u64 {
            let id = q.push(t(i * 64), i);
            if i >= 4_090 {
                keep.push(id);
            }
        }
        let grown = q.bucket_count();
        assert!(grown > 16);
        // Drain most of the population; the shrink threshold must kick in
        // without losing the survivors.
        for _ in 0..4_090 {
            assert!(q.pop().is_some());
        }
        assert!(q.bucket_count() < grown, "shrink resize never triggered");
        assert_eq!(q.len(), keep.len());
        let rest: Vec<_> = drain(&mut q).into_iter().map(|(_, p)| p).collect();
        assert_eq!(rest, (4_090..4_096).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = CalendarQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(9)));
    }

    #[test]
    fn is_empty_tracks_live_count() {
        let mut q = CalendarQueue::new();
        assert!(q.is_empty());
        let a = q.push(t(1), 0);
        assert!(!q.is_empty());
        q.cancel(a);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn slab_reuses_cells_in_steady_state() {
        // After warm-up, a schedule/pop cycle must not grow the slab.
        let mut q = CalendarQueue::new();
        for i in 0..64u64 {
            q.push(t(i), i);
        }
        for i in 64..10_000u64 {
            q.push(t(i), i);
            q.pop();
        }
        assert!(
            q.cells.len() <= 130,
            "slab grew past the live population: {}",
            q.cells.len()
        );
    }

    #[test]
    fn ids_are_the_monotone_push_sequence() {
        let mut q = CalendarQueue::new();
        let a = q.push(t(9), ());
        let b = q.push(t(3), ());
        assert_eq!(a.as_u64() + 1, b.as_u64());
    }
}
