//! Loaded-latency curves.
//!
//! Real memory and fabric links exhibit the "loaded latency" behaviour the
//! paper measures in Table 2: unloaded reads complete at a minimum latency,
//! and latency climbs toward a maximum as offered load approaches the
//! resource's bandwidth. [`LoadedLatencyCurve`] reproduces that shape with an
//! M/M/1-like normalized queueing factor, parameterized only by the measured
//! `(min, max)` endpoints — exactly the two numbers the paper reports per
//! link, so the model is anchored to published data.

use crate::time::SimDuration;

/// Latency as a convex function of utilization, anchored at measured
/// endpoints: `latency(0) = min`, `latency(1) = max`.
///
/// The interpolation uses the normalized M/M/1 waiting-time shape
/// `g(u) = u·(1−ρ̂)/(1−ρ̂·u)` with `ρ̂ = 0.95`, which stays flat until
/// ~70% utilization and rises sharply near saturation — the shape of
/// Intel MLC loaded-latency sweeps the paper's Table 2 is drawn from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadedLatencyCurve {
    min: SimDuration,
    max: SimDuration,
    /// Effective server occupancy used in the queueing factor.
    rho_hat: f64,
}

impl LoadedLatencyCurve {
    /// Build from measured unloaded (`min`) and saturated (`max`) latencies.
    ///
    /// # Panics
    /// Panics if `max < min`.
    pub fn new(min: SimDuration, max: SimDuration) -> Self {
        // lmp-lint: allow(no-panic) — documented `# Panics` ctor precondition;
        // an inverted latency range is a model-configuration bug.
        assert!(max >= min, "loaded latency max {max} < min {min}");
        LoadedLatencyCurve {
            min,
            max,
            rho_hat: 0.95,
        }
    }

    /// Convenience constructor from nanosecond endpoints.
    pub fn from_nanos(min_ns: u64, max_ns: u64) -> Self {
        Self::new(
            SimDuration::from_nanos(min_ns),
            SimDuration::from_nanos(max_ns),
        )
    }

    /// Unloaded latency.
    pub fn min(&self) -> SimDuration {
        self.min
    }

    /// Fully loaded latency.
    pub fn max(&self) -> SimDuration {
        self.max
    }

    /// Latency at utilization `u ∈ [0, 1]` (clamped).
    pub fn at(&self, utilization: f64) -> SimDuration {
        let u = utilization.clamp(0.0, 1.0);
        let g = (u * (1.0 - self.rho_hat)) / (1.0 - self.rho_hat * u);
        // g(1) = 1 exactly; g(0) = 0.
        let span = self.max.saturating_sub(self.min);
        self.min + span.mul_f64(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_match_measurements() {
        // Link0 from Table 2: 163ns unloaded, 418ns loaded.
        let c = LoadedLatencyCurve::from_nanos(163, 418);
        assert_eq!(c.at(0.0).as_nanos(), 163);
        assert_eq!(c.at(1.0).as_nanos(), 418);
    }

    #[test]
    fn curve_is_monotone() {
        let c = LoadedLatencyCurve::from_nanos(82, 527);
        let mut last = SimDuration::ZERO;
        for i in 0..=100 {
            let l = c.at(i as f64 / 100.0);
            assert!(l >= last, "latency decreased at u={}", i as f64 / 100.0);
            last = l;
        }
    }

    #[test]
    fn curve_is_flat_then_steep() {
        let c = LoadedLatencyCurve::from_nanos(100, 1_100);
        // At 50% utilization, less than 10% of the climb has happened.
        let at_half = c.at(0.5).as_nanos() - 100;
        assert!(at_half < 100, "climb at u=0.5 was {at_half}ns");
        // The last 10% of utilization contributes most of the climb.
        let at_90 = c.at(0.9).as_nanos();
        let at_100 = c.at(1.0).as_nanos();
        assert!(at_100 - at_90 > 500, "knee too early");
    }

    #[test]
    fn utilization_is_clamped() {
        let c = LoadedLatencyCurve::from_nanos(10, 20);
        assert_eq!(c.at(-0.5), c.at(0.0));
        assert_eq!(c.at(1.5), c.at(1.0));
    }

    #[test]
    fn degenerate_flat_curve() {
        let c = LoadedLatencyCurve::from_nanos(50, 50);
        assert_eq!(c.at(0.7).as_nanos(), 50);
    }

    #[test]
    #[should_panic(expected = "loaded latency max")]
    fn inverted_endpoints_panic() {
        let _ = LoadedLatencyCurve::from_nanos(100, 50);
    }
}
