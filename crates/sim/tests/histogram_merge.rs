// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Histogram merge and quantile contracts.
//!
//! The telemetry subsystem rolls per-node histograms up to rack level by
//! merging, so merging must be exactly equivalent to having recorded the
//! union of samples into one histogram, and quantiles must stay within the
//! log-linear bucketing error (32 sub-buckets per octave ⇒ ≤ 1/32 ≈ 3.2%
//! relative error above the linear range).

use lmp_sim::prelude::*;

/// Deterministic pseudo-random sample stream (no external RNG needed).
fn samples(seed: u64, n: usize, span: u64) -> Vec<u64> {
    let mut rng = DetRng::new(seed);
    (0..n).map(|_| 1 + rng.below(span)).collect()
}

#[test]
fn merge_equals_recording_the_union() {
    let a_samples = samples(1, 5_000, 2_000_000);
    let b_samples = samples(2, 3_000, 80);
    let mut a = Histogram::new();
    let mut b = Histogram::new();
    let mut union = Histogram::new();
    for &v in &a_samples {
        a.record(v);
        union.record(v);
    }
    for &v in &b_samples {
        b.record(v);
        union.record(v);
    }
    a.merge(&b);
    assert_eq!(a.count(), union.count());
    assert_eq!(a.min(), union.min());
    assert_eq!(a.max(), union.max());
    assert!((a.mean() - union.mean()).abs() < 1e-9);
    // Same bucket contents ⇒ identical quantiles at every probe point.
    for q in [0.0, 0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1.0] {
        assert_eq!(
            a.quantile(q),
            union.quantile(q),
            "quantile {q} diverged after merge"
        );
    }
}

#[test]
fn merge_is_commutative_on_summaries() {
    let xs = samples(3, 2_000, 1_000_000);
    let ys = samples(4, 2_000, 500);
    let ab = {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        xs.iter().for_each(|&v| a.record(v));
        ys.iter().for_each(|&v| b.record(v));
        a.merge(&b);
        a
    };
    let ba = {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        xs.iter().for_each(|&v| a.record(v));
        ys.iter().for_each(|&v| b.record(v));
        b.merge(&a);
        b
    };
    assert_eq!(ab.count(), ba.count());
    assert_eq!(ab.min(), ba.min());
    assert_eq!(ab.max(), ba.max());
    for q in [0.5, 0.95, 0.99] {
        assert_eq!(ab.quantile(q), ba.quantile(q));
    }
}

#[test]
fn merge_with_empty_is_identity() {
    let mut h = Histogram::new();
    for &v in &samples(5, 1_000, 10_000) {
        h.record(v);
    }
    let before = (h.count(), h.min(), h.max(), h.p50(), h.p99());
    h.merge(&Histogram::new());
    assert_eq!((h.count(), h.min(), h.max(), h.p50(), h.p99()), before);

    let mut empty = Histogram::new();
    let mut full = Histogram::new();
    samples(5, 1_000, 10_000).iter().for_each(|&v| full.record(v));
    empty.merge(&full);
    assert_eq!(empty.count(), full.count());
    assert_eq!(empty.min(), full.min());
    assert_eq!(empty.p99(), full.p99());
}

#[test]
fn merged_quantiles_within_bucket_error_bounds() {
    // Two disjoint uniform populations recorded on "different nodes", then
    // merged at "rack level". True quantiles of the union are known in
    // closed form; the log-linear bucketing allows ≤ 1/32 relative error
    // (plus interpolation slack — assert 5%).
    let mut a = Histogram::new();
    let mut b = Histogram::new();
    for v in 1..=50_000u64 {
        a.record(v);
    }
    for v in 50_001..=100_000u64 {
        b.record(v);
    }
    a.merge(&b);
    assert_eq!(a.count(), 100_000);
    for (q, expect) in [(0.50, 50_000.0), (0.95, 95_000.0), (0.99, 99_000.0)] {
        let got = a.quantile(q) as f64;
        let err = (got - expect).abs() / expect;
        assert!(
            err < 0.05,
            "q={q}: got {got}, want {expect} (relative error {err:.4})"
        );
    }
    assert_eq!(a.quantile(1.0), 100_000);
    assert_eq!(a.min(), 1);
}
