// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Differential equivalence tests: the calendar queue against the
//! `BinaryHeap` reference model.
//!
//! The reference implementation ([`reference::BinaryHeapQueue`]) is the
//! executable specification. These tests drive both queues through random
//! schedule / cancel / pop interleavings — including same-instant bursts,
//! far-future outliers, and cancellation of stale ids — and assert the two
//! produce **identical** `(EventId, SimTime, event)` pop sequences, the
//! same cancel return values, and the same live counts throughout. Any
//! divergence in ordering, tie-breaking, id assignment, or lazy-deletion
//! semantics fails here before it can perturb a chaos digest.

use lmp_sim::prelude::*;
use lmp_sim::queue::reference::BinaryHeapQueue;
use proptest::prelude::*;

/// One scripted action against both queues. Raw `(u8, u64)` pairs keep the
/// strategy trivial for the shrinker; `apply` interprets them.
#[derive(Debug, Clone, Copy)]
enum Action {
    /// Schedule at a near time (dense band, heavy ties).
    PushNear(u64),
    /// Schedule a same-instant burst of 3 at one near time.
    Burst(u64),
    /// Schedule a far-future outlier (beyond the calendar year).
    PushFar(u64),
    /// Cancel the id issued `k` pushes ago (may be live, fired, or stale).
    Cancel(u64),
    /// Pop once.
    Pop,
    /// Pop repeatedly (drain up to 4).
    PopMany,
    /// Compare `peek_time` on both.
    Peek,
}

fn decode(op: u8, arg: u64) -> Action {
    match op % 10 {
        // Weight pushes and pops heavily so the queues stay populated.
        0 | 1 => Action::PushNear(arg % 4_096),
        2 => Action::Burst(arg % 4_096),
        // Spread outliers across radix bands up to ~2^52 ns.
        3 => Action::PushFar((1u64 << (20 + (arg % 33))) + arg % 65_536),
        4 => Action::Cancel(arg % 24),
        5..=7 => Action::Pop,
        8 => Action::PopMany,
        _ => Action::Peek,
    }
}

/// Run one script against both implementations, asserting lock-step
/// equivalence after every action. (The proptest shim's `prop_assert!` is
/// a plain assert, so this helper asserts directly.)
fn run_script(script: &[(u8, u64)]) {
    let mut cal: CalendarQueue<u64> = CalendarQueue::new();
    let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
    let mut issued: Vec<EventId> = Vec::new();
    let mut payload = 0u64;

    let push = |cal: &mut CalendarQueue<u64>,
                    heap: &mut BinaryHeapQueue<u64>,
                    issued: &mut Vec<EventId>,
                    payload: &mut u64,
                    at: u64| {
        let t = SimTime::from_nanos(at);
        let a = cal.push(t, *payload);
        let b = heap.push(t, *payload);
        prop_assert_eq!(a, b, "id divergence at push {}", *payload);
        issued.push(a);
        *payload += 1;
    };

    for &(op, arg) in script {
        match decode(op, arg) {
            Action::PushNear(at) | Action::PushFar(at) => {
                push(&mut cal, &mut heap, &mut issued, &mut payload, at);
            }
            Action::Burst(at) => {
                for _ in 0..3 {
                    push(&mut cal, &mut heap, &mut issued, &mut payload, at);
                }
            }
            Action::Cancel(back) => {
                if !issued.is_empty() {
                    let idx = issued.len().saturating_sub(1 + back as usize);
                    let id = issued[idx];
                    prop_assert_eq!(cal.cancel(id), heap.cancel(id), "cancel({:?})", id);
                }
            }
            Action::Pop => {
                let a = cal.pop();
                let b = heap.pop();
                prop_assert_eq!(a, b);
            }
            Action::PopMany => {
                for _ in 0..4 {
                    let a = cal.pop();
                    let b = heap.pop();
                    let done = a.is_none();
                    prop_assert_eq!(a, b);
                    if done {
                        break;
                    }
                }
            }
            Action::Peek => {
                prop_assert_eq!(cal.peek_time(), heap.peek_time());
            }
        }
        prop_assert_eq!(cal.len(), heap.len(), "live-count divergence");
        prop_assert_eq!(cal.is_empty(), heap.is_empty());
    }

    // Final drain: the complete remaining pop sequences must match too.
    loop {
        let a = cal.pop();
        let b = heap.pop();
        let done = a.is_none();
        prop_assert_eq!(a, b, "divergence in final drain");
        if done {
            break;
        }
    }
    prop_assert_eq!(heap.pop(), None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Random interleavings of schedule / burst / far-outlier / cancel /
    /// pop / peek produce identical behavior on both queues.
    #[test]
    fn random_interleavings_are_equivalent(
        script in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..400),
    ) {
        run_script(&script);
    }
}

/// Deterministic stress: enough churn to force several calendar resizes
/// (grow and shrink), year advances, and far-band drains, with the heap
/// model checking every single pop. Complements the proptest with a scale
/// the shrinker would never reach.
#[test]
fn long_mixed_run_matches_reference_exactly() {
    let mut cal: CalendarQueue<u64> = CalendarQueue::new();
    let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
    let mut rng = DetRng::new(0x51F7_BEEF);
    let mut issued = Vec::new();

    for i in 0..60_000u64 {
        match rng.below(10) {
            0..=3 => {
                // Near pushes around a drifting "now" to exercise rewinds.
                let at = SimTime::from_nanos(rng.below(1 << 22));
                issued.push(cal.push(at, i));
                heap.push(at, i);
            }
            4 => {
                let at = SimTime::from_nanos((1 << 30) + rng.below(1 << 44));
                issued.push(cal.push(at, i));
                heap.push(at, i);
            }
            5 => {
                let at = SimTime::from_nanos(rng.below(1 << 12));
                for _ in 0..4 {
                    issued.push(cal.push(at, i));
                    heap.push(at, i);
                }
            }
            6 => {
                if let Some(&id) = issued.get(rng.below(issued.len().max(1) as u64) as usize) {
                    assert_eq!(cal.cancel(id), heap.cancel(id));
                }
            }
            _ => {
                assert_eq!(cal.pop(), heap.pop(), "pop divergence at step {i}");
            }
        }
        assert_eq!(cal.len(), heap.len(), "len divergence at step {i}");
    }
    loop {
        let a = cal.pop();
        let b = heap.pop();
        assert_eq!(a, b, "divergence in final drain");
        if a.is_none() {
            break;
        }
    }
}
