// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Property-based tests for the simulation kernel.

use lmp_sim::prelude::*;
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing timestamp order, and equal
    /// timestamps pop in insertion order.
    #[test]
    fn queue_pop_order_is_total(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, _, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO violated at equal timestamps");
                }
            }
            last = Some((t, idx));
        }
    }

    /// Cancelling an arbitrary subset delivers exactly the complement.
    #[test]
    fn queue_cancellation_is_exact(
        times in proptest::collection::vec(0u64..100, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.push(SimTime::from_nanos(t), i))
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
            } else {
                expect.push(i);
            }
        }
        let mut got: Vec<usize> = Vec::new();
        while let Some((_, _, p)) = q.pop() {
            got.push(p);
        }
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Histogram quantiles are within ~5% relative error and bracketed by
    /// min/max for arbitrary sample sets.
    #[test]
    fn histogram_quantile_error_bounded(
        mut samples in proptest::collection::vec(1u64..1_000_000_000, 10..500),
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let got = h.quantile(q);
            prop_assert!(got >= h.min() && got <= h.max());
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1] as f64;
            let err = (got as f64 - exact).abs() / exact.max(1.0);
            prop_assert!(err < 0.07, "q={q}: got {got}, exact {exact}, err {err}");
        }
    }

    /// Histogram mean/min/max/count are exact regardless of bucketing.
    #[test]
    fn histogram_moments_exact(samples in proptest::collection::vec(0u64..u32::MAX as u64, 1..200)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
        let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / samples.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-6 * mean.max(1.0));
    }

    /// The engine delivers every scheduled event exactly once, in time order.
    #[test]
    fn engine_delivers_everything_once(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut eng = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            eng.schedule_at(SimTime::from_nanos(t), i)
                .expect("fresh engine: every time is in the future");
        }
        let mut seen = vec![false; times.len()];
        let mut last = SimTime::ZERO;
        eng.run(|eng, i| {
            assert!(!seen[i], "event {i} delivered twice");
            seen[i] = true;
            assert!(eng.now() >= last);
            last = eng.now();
        });
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(eng.events_processed(), times.len() as u64);
    }

    /// BusyTracker utilization is always in [0, 1] and monotone in load.
    #[test]
    fn busy_utilization_bounded(
        jobs in proptest::collection::vec((0u64..10_000, 1u64..500), 1..100),
    ) {
        let mut b = BusyTracker::new(SimDuration::from_nanos(5_000));
        let mut sorted = jobs.clone();
        sorted.sort_unstable();
        let mut horizon = SimTime::ZERO;
        for (at, work) in sorted {
            let (_, end) = b.occupy(SimTime::from_nanos(at), SimDuration::from_nanos(work));
            horizon = horizon.max(end);
        }
        let u = b.utilization(horizon);
        prop_assert!((0.0..=1.0).contains(&u), "u={u}");
    }

    /// Transfer time scales linearly with byte count.
    #[test]
    fn bandwidth_linear(gbps in 1.0f64..200.0, kb in 1u64..1_000_000) {
        let bw = Bandwidth::from_gbps(gbps);
        let one = bw.time_to_transfer(kb * 1024).as_nanos() as f64;
        let two = bw.time_to_transfer(2 * kb * 1024).as_nanos() as f64;
        // Within rounding, doubling bytes doubles time.
        prop_assert!((two / one - 2.0).abs() < 0.01, "one={one} two={two}");
    }

    /// Forked RNG streams are reproducible.
    #[test]
    fn rng_fork_reproducible(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let a = DetRng::new(seed);
        let mut f1 = a.fork(&label);
        let mut f2 = a.fork(&label);
        for _ in 0..16 {
            prop_assert_eq!(rand::RngCore::next_u64(&mut f1), rand::RngCore::next_u64(&mut f2));
        }
    }
}
