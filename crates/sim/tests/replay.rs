// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Deterministic replay of `lmp-sim::Engine`.
//!
//! A seeded workload schedules, cancels, and chains events through the
//! engine; the recorded trace of (time, event) pairs must be identical
//! across runs of the same seed, and ties at the same timestamp must
//! fire in schedule order. This is the substrate the chaos harness
//! builds on: if the engine replays, a fault plan replays.

use lmp_sim::prelude::*;
use proptest::prelude::*;

/// Run a seeded self-scheduling workload to completion and return the
/// full event trace.
fn run_workload(seed: u64) -> Vec<(u64, u32)> {
    let mut rng = DetRng::new(seed).fork("replay-workload");
    let mut eng: Engine<u32> = Engine::new();

    // Seed events at random times, including deliberate collisions.
    for i in 0..24u32 {
        let at = SimTime::from_nanos(rng.below(1_000));
        eng.schedule_at(at, i)
            .expect("fresh engine: every time is in the future");
    }
    // Schedule-then-cancel: cancelled events must not perturb the trace.
    let doomed: Vec<_> = (100..110u32)
        .map(|i| {
            eng.schedule_at(SimTime::from_nanos(rng.below(1_000)), i)
                .expect("fresh engine: every time is in the future")
        })
        .collect();
    for (j, id) in doomed.into_iter().enumerate() {
        if j % 2 == 0 {
            assert!(eng.cancel(id));
        }
    }

    let mut handler_rng = rng.fork("handler");
    let mut trace = Vec::new();
    eng.run(|eng, ev| {
        trace.push((eng.now().as_nanos(), ev));
        // Chain follow-ups with seeded decisions, bounded so it halts.
        if ev < 72 && handler_rng.chance(0.6) {
            let delay = SimDuration::from_nanos(1 + handler_rng.below(400));
            eng.schedule_after(delay, ev + 24);
        }
    });
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    fn same_seed_same_trace(seed in any::<u64>()) {
        let a = run_workload(seed);
        let b = run_workload(seed);
        prop_assert!(!a.is_empty());
        prop_assert_eq!(a, b);
    }
}

#[test]
fn different_seeds_diverge() {
    // Not guaranteed in principle, overwhelmingly likely in practice —
    // and a regression here would mean the seed is being ignored.
    assert_ne!(run_workload(1), run_workload(2));
}

#[test]
fn simultaneous_events_fire_in_schedule_order() {
    let mut eng: Engine<u32> = Engine::new();
    let t = SimTime::from_nanos(500);
    for i in 0..16u32 {
        eng.schedule_at(t, i)
            .expect("fresh engine: every time is in the future");
    }
    let mut seen = Vec::new();
    eng.run(|_, ev| seen.push(ev));
    assert_eq!(seen, (0..16).collect::<Vec<_>>());
}

#[test]
fn cancelled_events_never_fire() {
    let mut eng: Engine<u32> = Engine::new();
    let keep = eng
        .schedule_at(SimTime::from_nanos(10), 1)
        .expect("future schedule");
    let drop = eng
        .schedule_at(SimTime::from_nanos(5), 2)
        .expect("future schedule");
    assert!(eng.cancel(drop));
    assert!(!eng.cancel(drop), "double-cancel must report false");
    let mut seen = Vec::new();
    eng.run(|_, ev| seen.push(ev));
    assert_eq!(seen, vec![1]);
    let _ = keep;
}
