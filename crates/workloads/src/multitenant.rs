//! Multi-tenant rack simulation.
//!
//! The sizing challenge (§5) only bites when several applications with
//! different working sets, priorities, and *phases* share the rack. This
//! workload models that: each tenant runs on one server, declares a demand
//! to the [`RackRuntime`], allocates through the per-server runtime's VA
//! API, and replays a phased access trace. Between batches the runtime's
//! background tasks re-size shared regions and migrate hot buffers — the
//! full §3.2 architecture in motion.

use crate::trace::{Pattern, TraceSpec};
use lmp_core::prelude::*;
use lmp_fabric::{Fabric, MemOp, NodeId};
use lmp_sim::prelude::*;

/// One tenant's static description.
#[derive(Debug, Clone)]
pub struct Tenant {
    /// Server the tenant runs on.
    pub server: NodeId,
    /// Working-set size in bytes.
    pub working_set: u64,
    /// Sizing priority (§5: "prioritizing high-value applications").
    pub priority: u32,
    /// Access pattern.
    pub pattern: Pattern,
    /// Accesses per batch.
    pub ops_per_batch: u64,
}

/// Per-tenant telemetry after a run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The tenant's server.
    pub server: NodeId,
    /// Mean access latency per batch, in nanoseconds.
    pub batch_latency_ns: Vec<f64>,
    /// Fraction of bytes served locally, whole run.
    pub local_fraction: f64,
}

/// Outcome of a multi-tenant run.
#[derive(Debug, Clone)]
pub struct MultiTenantReport {
    /// Per-tenant results, in input order.
    pub tenants: Vec<TenantReport>,
    /// Migrations the balancer executed.
    pub migrations: u64,
    /// Sizing runs that fired.
    pub sizing_runs: u64,
    /// Completion time.
    pub complete: SimTime,
}

/// Run `batches` rounds of all tenants' traces with the rack runtime's
/// background tasks active between rounds.
///
/// Tenants run round-robin within a batch (their accesses interleave in
/// simulated time via the shared resources; ordering across tenants within
/// a batch follows input order, which is deterministic).
// Workload driver: setup expects (non-empty working sets, in-bounds
// traces) are config contracts, trapped loudly like a test assert.
#[allow(clippy::expect_used)]
pub fn run(
    pool: &mut LogicalPool,
    fabric: &mut Fabric,
    rack: &mut RackRuntime,
    tenants: &[Tenant],
    batches: u32,
    seed: u64,
) -> Result<MultiTenantReport, PoolError> {
    let root = DetRng::new(seed);
    // Register demands and allocate working sets through the VA API.
    // Working sets larger than the local share spill to other servers as
    // extra stripes, mapped back-to-back so the tenant sees one contiguous
    // VA range (stripes are frame-aligned, and so are mappings).
    let mut buffers = Vec::with_capacity(tenants.len());
    for t in tenants {
        rack.register_demand(AppDemand {
            server: t.server,
            bytes: t.working_set,
            priority: t.priority,
        });
        let stripes =
            lmp_compute::DistVector::place_local_first(pool, t.working_set, t.server)?;
        let rt = rack.server(t.server);
        let mut base = None;
        for (_, seg, len) in &stripes.stripes {
            let va = rt.map(*seg, *len);
            base.get_or_insert(va);
        }
        buffers.push(base.expect("non-empty working set"));
    }

    let mut reports: Vec<TenantReport> = tenants
        .iter()
        .map(|t| TenantReport {
            server: t.server,
            batch_latency_ns: Vec::new(),
            local_fraction: 0.0,
        })
        .collect();
    let mut local_bytes = vec![0u64; tenants.len()];
    let mut total_bytes = vec![0u64; tenants.len()];

    let mut now = SimTime::ZERO;
    for batch in 0..batches {
        for (i, t) in tenants.iter().enumerate() {
            let spec = TraceSpec {
                pattern: t.pattern,
                access_bytes: 4096,
                write_fraction: 0.1,
                length: t.ops_per_batch,
            };
            let trace = spec.generate(
                t.working_set,
                root.fork_indexed("tenant", (i as u64) << 16 | batch as u64),
            );
            let mut sum_ns = 0u64;
            for op in &trace {
                let addr = rack
                    .server(t.server)
                    .resolve(
                        lmp_core::runtime::VirtAddr(buffers[i].0 + op.offset),
                        4096,
                    )
                    .expect("trace stays in bounds");
                let a = pool.access(fabric, now, t.server, addr, 4096, op.op)?;
                sum_ns += a.complete.duration_since(now).as_nanos();
                local_bytes[i] += a.local_bytes;
                total_bytes[i] += a.local_bytes + a.remote_bytes;
                now = a.complete;
            }
            reports[i]
                .batch_latency_ns
                .push(sum_ns as f64 / trace.len().max(1) as f64);
        }
        // Background tasks between batches.
        rack.tick(pool, fabric, now);
        let _ = MemOp::Read;
    }
    for (i, r) in reports.iter_mut().enumerate() {
        r.local_fraction = if total_bytes[i] == 0 {
            0.0
        } else {
            local_bytes[i] as f64 / total_bytes[i] as f64
        };
    }
    Ok(MultiTenantReport {
        tenants: reports,
        migrations: rack.balancer().migration_count(),
        sizing_runs: rack.sizing_runs(),
        complete: now,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmp_fabric::LinkProfile;
    use lmp_mem::{DramProfile, FRAME_BYTES};

    fn setup() -> (LogicalPool, Fabric, RackRuntime) {
        let pool = LogicalPool::new(PoolConfig {
            servers: 4,
            capacity_per_server: 32 * FRAME_BYTES,
            shared_per_server: 28 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 64,
        });
        let fabric = Fabric::new(LinkProfile::link1(), 4);
        let rack = RackRuntime::new(
            &pool,
            RuntimeConfig {
                balance_period: SimDuration::from_micros(100),
                sizing_period: SimDuration::from_millis(1),
                ..RuntimeConfig::default()
            },
        );
        (pool, fabric, rack)
    }

    fn tenants() -> Vec<Tenant> {
        vec![
            Tenant {
                server: NodeId(0),
                working_set: 8 * FRAME_BYTES,
                priority: 5,
                pattern: Pattern::Zipfian(1.0),
                ops_per_batch: 300,
            },
            Tenant {
                server: NodeId(1),
                working_set: 4 * FRAME_BYTES,
                priority: 1,
                pattern: Pattern::Sequential,
                ops_per_batch: 200,
            },
            Tenant {
                server: NodeId(2),
                working_set: 6 * FRAME_BYTES,
                priority: 3,
                pattern: Pattern::PhasedHotspot { phases: 3 },
                ops_per_batch: 200,
            },
        ]
    }

    #[test]
    fn multi_tenant_run_completes_with_high_locality() {
        let (mut pool, mut fabric, mut rack) = setup();
        let report = run(&mut pool, &mut fabric, &mut rack, &tenants(), 4, 42).unwrap();
        assert_eq!(report.tenants.len(), 3);
        for (i, t) in report.tenants.iter().enumerate() {
            assert_eq!(t.batch_latency_ns.len(), 4);
            // Working sets fit locally, so locality should be total.
            assert!(
                t.local_fraction > 0.99,
                "tenant {i} local fraction {}",
                t.local_fraction
            );
        }
        assert!(report.complete > SimTime::ZERO);
    }

    #[test]
    fn deterministic_across_runs() {
        let go = || {
            let (mut pool, mut fabric, mut rack) = setup();
            let r = run(&mut pool, &mut fabric, &mut rack, &tenants(), 3, 7).unwrap();
            (
                r.complete.as_nanos(),
                r.migrations,
                r.tenants
                    .iter()
                    .map(|t| t.batch_latency_ns.iter().map(|x| x.to_bits()).collect::<Vec<_>>())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn spilled_tenant_gets_migrations() {
        // A tenant whose working set exceeds its server's share spills to
        // other servers; the balancer then pulls hot buffers toward it.
        let mut pool = LogicalPool::new(PoolConfig {
            servers: 3,
            capacity_per_server: 12 * FRAME_BYTES,
            shared_per_server: 10 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 64,
        });
        let mut fabric = Fabric::new(LinkProfile::link1(), 3);
        let mut rack = RackRuntime::new(
            &pool,
            RuntimeConfig {
                balance_period: SimDuration::from_micros(10),
                ..RuntimeConfig::default()
            },
        );
        let big = vec![Tenant {
            server: NodeId(0),
            working_set: 16 * FRAME_BYTES, // > 10-frame share: spills
            priority: 5,
            pattern: Pattern::Zipfian(1.2),
            ops_per_batch: 800,
        }];
        let report = run(&mut pool, &mut fabric, &mut rack, &big, 4, 3).unwrap();
        assert!(
            report.tenants[0].local_fraction < 1.0,
            "spill must cause remote accesses"
        );
        // The zipf head is hot; balancer pulls something toward server 0 —
        // but only if capacity allows. Either way the run is sane.
        assert!(report.complete > SimTime::ZERO);
    }
}
