//! Multi-tenant rack simulation.
//!
//! The sizing challenge (§5) only bites when several applications with
//! different working sets, priorities, and *phases* share the rack. This
//! workload models that: each tenant runs on one server, declares a demand
//! to the [`RackRuntime`], allocates through the per-server runtime's VA
//! API, and replays a phased access trace. Between batches the runtime's
//! background tasks re-size shared regions and migrate hot buffers — the
//! full §3.2 architecture in motion.

use crate::trace::{Pattern, TraceSpec};
use lmp_core::prelude::*;
use lmp_fabric::{Fabric, MemOp, NodeId};
use lmp_qos::Band;
use lmp_sim::prelude::*;

/// One tenant's static description.
#[derive(Debug, Clone)]
pub struct Tenant {
    /// Server the tenant runs on.
    pub server: NodeId,
    /// Working-set size in bytes.
    pub working_set: u64,
    /// Sizing priority (§5: "prioritizing high-value applications").
    pub priority: u32,
    /// Access pattern.
    pub pattern: Pattern,
    /// Accesses per batch.
    pub ops_per_batch: u64,
}

/// Per-tenant telemetry after a run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The tenant's server.
    pub server: NodeId,
    /// Per-access latency distribution over the whole run: integer
    /// nanoseconds in log-linear buckets, so tenant p50/p99/p999
    /// ([`Histogram::quantile`]) is first-class and digest-safe — no
    /// float accumulation order to leak into trace digests.
    pub latency: Histogram,
    /// Fraction of bytes served locally, whole run.
    pub local_fraction: f64,
}

/// Outcome of a multi-tenant run.
#[derive(Debug, Clone)]
pub struct MultiTenantReport {
    /// Per-tenant results, in input order.
    pub tenants: Vec<TenantReport>,
    /// Migrations the balancer executed.
    pub migrations: u64,
    /// Sizing runs that fired.
    pub sizing_runs: u64,
    /// Completion time.
    pub complete: SimTime,
}

/// Run `batches` rounds of all tenants' traces with the rack runtime's
/// background tasks active between rounds.
///
/// Tenants run round-robin within a batch (their accesses interleave in
/// simulated time via the shared resources; ordering across tenants within
/// a batch follows input order, which is deterministic).
// Workload driver: setup expects (non-empty working sets, in-bounds
// traces) are config contracts, trapped loudly like a test assert.
#[allow(clippy::expect_used)]
pub fn run(
    pool: &mut LogicalPool,
    fabric: &mut Fabric,
    rack: &mut RackRuntime,
    tenants: &[Tenant],
    batches: u32,
    seed: u64,
) -> Result<MultiTenantReport, PoolError> {
    let root = DetRng::new(seed);
    // Register demands and allocate working sets through the VA API.
    // Working sets larger than the local share spill to other servers as
    // extra stripes, mapped back-to-back so the tenant sees one contiguous
    // VA range (stripes are frame-aligned, and so are mappings).
    let mut buffers = Vec::with_capacity(tenants.len());
    for t in tenants {
        rack.register_demand(AppDemand {
            server: t.server,
            bytes: t.working_set,
            priority: t.priority,
        });
        let stripes =
            lmp_compute::DistVector::place_local_first(pool, t.working_set, t.server)?;
        let rt = rack.server(t.server);
        let mut base = None;
        for (_, seg, len) in &stripes.stripes {
            let va = rt.map(*seg, *len);
            base.get_or_insert(va);
        }
        buffers.push(base.ok_or(PoolError::InvalidRequest("tenant working set is empty"))?);
    }

    let mut reports: Vec<TenantReport> = tenants
        .iter()
        .map(|t| TenantReport {
            server: t.server,
            latency: Histogram::new(),
            local_fraction: 0.0,
        })
        .collect();
    let mut local_bytes = vec![0u64; tenants.len()];
    let mut total_bytes = vec![0u64; tenants.len()];

    let mut now = SimTime::ZERO;
    for batch in 0..batches {
        for (i, t) in tenants.iter().enumerate() {
            let spec = TraceSpec {
                pattern: t.pattern,
                access_bytes: 4096,
                write_fraction: 0.1,
                length: t.ops_per_batch,
            };
            let trace = spec.generate(
                t.working_set,
                root.fork_indexed("tenant", (i as u64) << 16 | batch as u64),
            );
            for op in &trace {
                let addr = rack
                    .server(t.server)
                    .resolve(
                        lmp_core::runtime::VirtAddr(buffers[i].0 + op.offset),
                        4096,
                    )
                    .map_err(|_| PoolError::Internal("trace op resolved out of bounds"))?;
                let a = pool.access(fabric, now, t.server, addr, 4096, op.op)?;
                reports[i]
                    .latency
                    .record_duration(a.complete.duration_since(now));
                local_bytes[i] += a.local_bytes;
                total_bytes[i] += a.local_bytes + a.remote_bytes;
                now = a.complete;
            }
        }
        // Background tasks between batches.
        rack.tick(pool, fabric, now);
        let _ = MemOp::Read;
    }
    for (i, r) in reports.iter_mut().enumerate() {
        r.local_fraction = if total_bytes[i] == 0 {
            0.0
        } else {
            local_bytes[i] as f64 / total_bytes[i] as f64
        };
    }
    Ok(MultiTenantReport {
        tenants: reports,
        migrations: rack.balancer().migration_count(),
        sizing_runs: rack.sizing_runs(),
        complete: now,
    })
}

/// Per-tenant QoS knobs for [`run_qos`]: how the tenant's traffic is
/// classified and paced, plus the open-loop arrival process that makes
/// link contention observable in the first place.
#[derive(Debug, Clone, Copy)]
pub struct TenantQos {
    /// Fabric priority band the tenant's accesses ride. Only observable
    /// when the caller enabled bands on the fabric.
    pub band: Band,
    /// Admission limit; `None` admits unconditionally.
    pub rate: Option<TenantRate>,
    /// Gap between successive op issues within a batch (open-loop: ops
    /// are issued on this schedule whether or not earlier ones finished).
    pub issue_period: SimDuration,
    /// Bytes per access (overrides the closed-loop default of 4 KiB so
    /// an aggressor can flood with bulk transfers).
    pub access_bytes: u64,
}

/// Per-tenant outcome of a [`run_qos`] round.
#[derive(Debug, Clone)]
pub struct QosTenantReport {
    /// Latency distribution over admitted accesses (integer ns).
    pub latency: Histogram,
    /// Accesses admitted and completed.
    pub admitted: u64,
    /// Accesses refused by admission control (no fabric or DRAM charge).
    pub rejected: u64,
    /// Bytes served from the tenant's home server.
    pub local_bytes: u64,
    /// Bytes that crossed the fabric.
    pub remote_bytes: u64,
}

/// Outcome of a [`run_qos`] run.
#[derive(Debug, Clone)]
pub struct QosReport {
    /// Per-tenant results, in input order.
    pub tenants: Vec<QosTenantReport>,
    /// Completion time of the last admitted access.
    pub complete: SimTime,
}

/// Open-loop, tenant-aware variant of [`run`]: each tenant's ops are
/// *issued on a fixed schedule* (`issue_period`) instead of each waiting
/// for the previous to complete, so tenants genuinely overlap in
/// simulated time and contend for fabric wires — the noisy-neighbor
/// setting the QoS machinery exists for. Accesses go through
/// [`LogicalPool::access_as`], so each tenant's configured admission
/// limit and priority band apply. Batches drain fully before the next
/// begins (the backlog a flood builds is paid inside its batch, not
/// leaked into the next), with the runtime's background tasks between.
///
/// Rejected ops are counted and dropped — an open-loop arrival that
/// missed admission does not retry, mirroring a client that sheds load.
// Workload driver: setup expects are config contracts, trapped loudly.
#[allow(clippy::expect_used)]
pub fn run_qos(
    pool: &mut LogicalPool,
    fabric: &mut Fabric,
    rack: &mut RackRuntime,
    tenants: &[Tenant],
    qos: &[TenantQos],
    batches: u32,
    seed: u64,
) -> Result<QosReport, PoolError> {
    if tenants.len() != qos.len() {
        return Err(PoolError::InvalidRequest("one QoS spec per tenant required"));
    }
    let root = DetRng::new(seed);
    let mut buffers = Vec::with_capacity(tenants.len());
    for (i, t) in tenants.iter().enumerate() {
        rack.register_demand(AppDemand {
            server: t.server,
            bytes: t.working_set,
            priority: t.priority,
        });
        let stripes =
            lmp_compute::DistVector::place_local_first(pool, t.working_set, t.server)?;
        let rt = rack.server(t.server);
        let mut base = None;
        for (_, seg, len) in &stripes.stripes {
            let va = rt.map(*seg, *len);
            base.get_or_insert(va);
        }
        buffers.push(base.ok_or(PoolError::InvalidRequest("tenant working set is empty"))?);
        let tenant = TenantId(i as u32);
        pool.set_tenant_band(tenant, qos[i].band);
        if let Some(rate) = qos[i].rate {
            pool.set_tenant_rate(tenant, rate);
        }
    }

    let mut reports: Vec<QosTenantReport> = tenants
        .iter()
        .map(|_| QosTenantReport {
            latency: Histogram::new(),
            admitted: 0,
            rejected: 0,
            local_bytes: 0,
            remote_bytes: 0,
        })
        .collect();

    let mut batch_start = SimTime::ZERO;
    for batch in 0..batches {
        // Merged issue schedule across tenants, ordered by (time, tenant,
        // index) — a total deterministic order.
        let mut sched: Vec<(SimTime, usize, u64)> = Vec::new();
        let mut traces = Vec::with_capacity(tenants.len());
        for (i, t) in tenants.iter().enumerate() {
            let spec = TraceSpec {
                pattern: t.pattern,
                access_bytes: qos[i].access_bytes,
                write_fraction: 0.1,
                length: t.ops_per_batch,
            };
            traces.push(spec.generate(
                t.working_set,
                root.fork_indexed("qos-tenant", (i as u64) << 16 | batch as u64),
            ));
            let period = qos[i].issue_period.as_nanos();
            for j in 0..t.ops_per_batch {
                let at = batch_start + SimDuration::from_nanos(period.saturating_mul(j));
                sched.push((at, i, j));
            }
        }
        sched.sort_unstable_by_key(|&(at, i, j)| (at, i, j));

        let mut batch_end = batch_start;
        for (at, i, j) in sched {
            let t = &tenants[i];
            let op = traces[i][j as usize];
            let addr = rack
                .server(t.server)
                .resolve(
                    lmp_core::runtime::VirtAddr(buffers[i].0 + op.offset),
                    qos[i].access_bytes,
                )
                .map_err(|_| PoolError::Internal("trace op resolved out of bounds"))?;
            match pool.access_as(
                fabric,
                at,
                TenantId(i as u32),
                t.server,
                addr,
                qos[i].access_bytes,
                op.op,
            ) {
                Ok(a) => {
                    reports[i].admitted += 1;
                    reports[i].latency.record_duration(a.complete.duration_since(at));
                    reports[i].local_bytes += a.local_bytes;
                    reports[i].remote_bytes += a.remote_bytes;
                    if a.complete > batch_end {
                        batch_end = a.complete;
                    }
                }
                Err(PoolError::AdmissionRejected(_)) => reports[i].rejected += 1,
                Err(e) => return Err(e),
            }
        }
        rack.tick(pool, fabric, batch_end);
        batch_start = batch_end;
        let _ = batch;
    }
    Ok(QosReport {
        tenants: reports,
        complete: batch_start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmp_fabric::LinkProfile;
    use lmp_mem::{DramProfile, FRAME_BYTES};

    fn setup() -> (LogicalPool, Fabric, RackRuntime) {
        let pool = LogicalPool::new(PoolConfig {
            servers: 4,
            capacity_per_server: 32 * FRAME_BYTES,
            shared_per_server: 28 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 64,
        });
        let fabric = Fabric::new(LinkProfile::link1(), 4);
        let rack = RackRuntime::new(
            &pool,
            RuntimeConfig {
                balance_period: SimDuration::from_micros(100),
                sizing_period: SimDuration::from_millis(1),
                ..RuntimeConfig::default()
            },
        );
        (pool, fabric, rack)
    }

    fn tenants() -> Vec<Tenant> {
        vec![
            Tenant {
                server: NodeId(0),
                working_set: 8 * FRAME_BYTES,
                priority: 5,
                pattern: Pattern::Zipfian(1.0),
                ops_per_batch: 300,
            },
            Tenant {
                server: NodeId(1),
                working_set: 4 * FRAME_BYTES,
                priority: 1,
                pattern: Pattern::Sequential,
                ops_per_batch: 200,
            },
            Tenant {
                server: NodeId(2),
                working_set: 6 * FRAME_BYTES,
                priority: 3,
                pattern: Pattern::PhasedHotspot { phases: 3 },
                ops_per_batch: 200,
            },
        ]
    }

    #[test]
    fn multi_tenant_run_completes_with_high_locality() {
        let (mut pool, mut fabric, mut rack) = setup();
        let report = run(&mut pool, &mut fabric, &mut rack, &tenants(), 4, 42).unwrap();
        assert_eq!(report.tenants.len(), 3);
        let ops = [300u64, 200, 200];
        for (i, t) in report.tenants.iter().enumerate() {
            // Every access of every batch lands in the latency histogram.
            assert_eq!(t.latency.count(), ops[i] * 4);
            assert!(t.latency.p99() >= t.latency.p50());
            assert!(t.latency.p50() > 0);
            // Working sets fit locally, so locality should be total.
            assert!(
                t.local_fraction > 0.99,
                "tenant {i} local fraction {}",
                t.local_fraction
            );
        }
        assert!(report.complete > SimTime::ZERO);
    }

    #[test]
    fn deterministic_across_runs() {
        let go = || {
            let (mut pool, mut fabric, mut rack) = setup();
            let r = run(&mut pool, &mut fabric, &mut rack, &tenants(), 3, 7).unwrap();
            (
                r.complete.as_nanos(),
                r.migrations,
                r.tenants
                    .iter()
                    .map(|t| {
                        (
                            t.latency.count(),
                            t.latency.p50(),
                            t.latency.p99(),
                            t.latency.quantile(0.999),
                        )
                    })
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn spilled_tenant_gets_migrations() {
        // A tenant whose working set exceeds its server's share spills to
        // other servers; the balancer then pulls hot buffers toward it.
        let mut pool = LogicalPool::new(PoolConfig {
            servers: 3,
            capacity_per_server: 12 * FRAME_BYTES,
            shared_per_server: 10 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 64,
        });
        let mut fabric = Fabric::new(LinkProfile::link1(), 3);
        let mut rack = RackRuntime::new(
            &pool,
            RuntimeConfig {
                balance_period: SimDuration::from_micros(10),
                ..RuntimeConfig::default()
            },
        );
        let big = vec![Tenant {
            server: NodeId(0),
            working_set: 16 * FRAME_BYTES, // > 10-frame share: spills
            priority: 5,
            pattern: Pattern::Zipfian(1.2),
            ops_per_batch: 800,
        }];
        let report = run(&mut pool, &mut fabric, &mut rack, &big, 4, 3).unwrap();
        assert!(
            report.tenants[0].local_fraction < 1.0,
            "spill must cause remote accesses"
        );
        // The zipf head is hot; balancer pulls something toward server 0 —
        // but only if capacity allows. Either way the run is sane.
        assert!(report.complete > SimTime::ZERO);
    }
}
