//! Graph traversal over pooled memory.
//!
//! A pointer-heavy workload to complement the streaming vector benchmark:
//! a CSR graph stored in pool segments (offsets in one segment, edges in
//! another) traversed with BFS. Latency-bound pointer chasing is where
//! remote memory hurts most — each hop is a dependent access — so this is
//! the workload where placement and migration matter more than bandwidth.

use lmp_core::prelude::*;
use lmp_fabric::{Fabric, MemOp, NodeId};
use lmp_sim::prelude::*;

/// A CSR graph materialized in the pool.
#[derive(Debug)]
pub struct PoolGraph {
    /// Vertex count.
    pub vertices: u32,
    /// Segment holding `vertices + 1` u32 offsets.
    offsets_seg: SegmentId,
    /// Segment holding u32 edge targets.
    edges_seg: SegmentId,
}

impl PoolGraph {
    /// Build a ring-with-chords synthetic graph: vertex `v` links to
    /// `v+1 (mod n)` and to `v + n/3 (mod n)`. Deterministic, connected,
    /// and with non-local structure so BFS touches most of the address
    /// space quickly.
    pub fn ring_with_chords(
        pool: &mut LogicalPool,
        vertices: u32,
        placement: Placement,
    ) -> Result<Self, PoolError> {
        if vertices < 3 {
            return Err(PoolError::InvalidRequest("ring graph needs >= 3 vertices"));
        }
        let mut offsets = Vec::with_capacity(vertices as usize + 1);
        let mut edges: Vec<u32> = Vec::with_capacity(vertices as usize * 2);
        for v in 0..vertices {
            offsets.push(edges.len() as u32);
            edges.push((v + 1) % vertices);
            edges.push((v + vertices / 3) % vertices);
        }
        offsets.push(edges.len() as u32);

        let offsets_seg = pool.alloc((offsets.len() * 4) as u64, placement)?;
        let edges_seg = pool.alloc((edges.len() * 4) as u64, placement)?;
        let obytes: Vec<u8> = offsets.iter().flat_map(|x| x.to_le_bytes()).collect();
        let ebytes: Vec<u8> = edges.iter().flat_map(|x| x.to_le_bytes()).collect();
        pool.write_bytes(LogicalAddr::new(offsets_seg, 0), &obytes)?;
        pool.write_bytes(LogicalAddr::new(edges_seg, 0), &ebytes)?;
        Ok(PoolGraph {
            vertices,
            offsets_seg,
            edges_seg,
        })
    }

    // chunks of exactly 4 bytes always convert.
    #[allow(clippy::expect_used)]
    fn read_u32(
        &self,
        pool: &mut LogicalPool,
        fabric: &mut Fabric,
        now: SimTime,
        client: NodeId,
        seg: SegmentId,
        index: u64,
    ) -> Result<(u32, SimTime), PoolError> {
        let addr = LogicalAddr::new(seg, index * 4);
        let a = pool.access(fabric, now, client, addr, 4, MemOp::Read)?;
        let bytes = pool.read_bytes(addr, 4)?;
        Ok((
            u32::from_le_bytes(
                bytes
                    .try_into()
                    .map_err(|_| PoolError::Internal("read_bytes returned a short buffer"))?,
            ),
            a.complete,
        ))
    }

    /// The segments backing this graph (for migration experiments).
    pub fn segments(&self) -> (SegmentId, SegmentId) {
        (self.offsets_seg, self.edges_seg)
    }
}

/// Result of one BFS run.
#[derive(Debug, Clone, PartialEq)]
pub struct BfsResult {
    /// Vertices reached (== all, for the synthetic generator).
    pub visited: u32,
    /// Completion time of the traversal.
    pub complete: SimTime,
    /// Dependent memory accesses performed.
    pub accesses: u64,
}

/// Breadth-first traversal from `root`, issued by `client`. Every offset
/// and edge lookup is a dependent timed access — the pointer-chase pattern.
pub fn bfs(
    graph: &PoolGraph,
    pool: &mut LogicalPool,
    fabric: &mut Fabric,
    start: SimTime,
    client: NodeId,
    root: u32,
) -> Result<BfsResult, PoolError> {
    if root >= graph.vertices {
        return Err(PoolError::InvalidRequest("BFS root outside the graph"));
    }
    let mut visited = vec![false; graph.vertices as usize];
    let mut queue = std::collections::VecDeque::new();
    visited[root as usize] = true;
    queue.push_back(root);
    let mut now = start;
    let mut accesses = 0u64;
    let mut count = 0u32;
    while let Some(v) = queue.pop_front() {
        count += 1;
        let (lo, t1) = graph.read_u32(pool, fabric, now, client, graph.offsets_seg, v as u64)?;
        let (hi, t2) =
            graph.read_u32(pool, fabric, t1, client, graph.offsets_seg, v as u64 + 1)?;
        now = t2;
        accesses += 2;
        for e in lo..hi {
            let (target, t) = graph.read_u32(pool, fabric, now, client, graph.edges_seg, e as u64)?;
            now = t;
            accesses += 1;
            if !visited[target as usize] {
                visited[target as usize] = true;
                queue.push_back(target);
            }
        }
    }
    Ok(BfsResult {
        visited: count,
        complete: now,
        accesses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmp_fabric::LinkProfile;
    use lmp_mem::{DramProfile, FRAME_BYTES};

    fn setup() -> (LogicalPool, Fabric) {
        let cfg = PoolConfig {
            servers: 2,
            capacity_per_server: 16 * FRAME_BYTES,
            shared_per_server: 12 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 16,
        };
        (LogicalPool::new(cfg), Fabric::new(LinkProfile::link1(), 2))
    }

    #[test]
    fn bfs_visits_every_vertex() {
        let (mut p, mut f) = setup();
        let g = PoolGraph::ring_with_chords(&mut p, 100, Placement::On(NodeId(0))).unwrap();
        let r = bfs(&g, &mut p, &mut f, SimTime::ZERO, NodeId(0), 0).unwrap();
        assert_eq!(r.visited, 100);
        assert_eq!(r.accesses, 100 * 2 + 200);
    }

    #[test]
    fn local_traversal_beats_remote() {
        let (mut p, mut f) = setup();
        let g = PoolGraph::ring_with_chords(&mut p, 200, Placement::On(NodeId(0))).unwrap();
        let local = bfs(&g, &mut p, &mut f, SimTime::ZERO, NodeId(0), 0).unwrap();
        let remote = bfs(&g, &mut p, &mut f, local.complete, NodeId(1), 0).unwrap();
        let local_ns = local.complete.as_nanos();
        let remote_ns = remote.complete.as_nanos() - local.complete.as_nanos();
        // Pointer chasing amplifies the latency gap (~82ns vs ~261ns+).
        assert!(
            remote_ns > 2 * local_ns,
            "remote BFS {remote_ns}ns should be >2x local {local_ns}ns"
        );
    }

    #[test]
    fn migrating_the_graph_restores_local_speed() {
        let (mut p, mut f) = setup();
        let g = PoolGraph::ring_with_chords(&mut p, 100, Placement::On(NodeId(0))).unwrap();
        let before = bfs(&g, &mut p, &mut f, SimTime::ZERO, NodeId(1), 0).unwrap();
        let (o, e) = g.segments();
        migrate_segment(&mut p, &mut f, before.complete, o, NodeId(1)).unwrap();
        migrate_segment(&mut p, &mut f, before.complete, e, NodeId(1)).unwrap();
        let local_ref = bfs(&g, &mut p, &mut f, SimTime::ZERO, NodeId(1), 0);
        // After migration the same client's traversal is all-local.
        let r = local_ref.unwrap();
        assert_eq!(r.visited, 100);
        let (l, rm) = p.access_counts();
        assert!(l > 0 && rm > 0);
    }
}
