//! A key-value store over the logical pool.
//!
//! §6 notes that RDMA techniques "can be carried over to LMPs to benefit
//! key-value stores". This workload is that application: a fixed-capacity
//! hash-addressed KV store whose value slots live in pool segments spread
//! across servers, driven by a zipfian request mix from every server. It
//! exercises allocation, materialized reads/writes, timed accesses, and —
//! together with the balancer — shows skewed keys migrating toward their
//! hottest client.

use lmp_core::prelude::*;
use lmp_fabric::{Fabric, MemOp, NodeId};
use lmp_sim::prelude::*;
use rand::Rng;
use rand_distr::{Distribution, Zipf};

/// Fixed-size value slot.
pub const SLOT_BYTES: u64 = 256;

/// Store configuration.
#[derive(Debug, Clone)]
pub struct KvConfig {
    /// Number of key slots.
    pub slots: u64,
    /// Keys per segment (placement granularity for migration).
    pub slots_per_segment: u64,
    /// Zipf skew (1.0 ≈ classic web skew; 0 would be uniform — use
    /// `uniform` in [`KvWorkload`] instead).
    pub zipf_exponent: f64,
    /// Fraction of operations that are writes.
    pub write_fraction: f64,
    /// Where slot segments are placed at creation time.
    pub placement: Placement,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            slots: 4096,
            slots_per_segment: 256,
            zipf_exponent: 1.0,
            write_fraction: 0.1,
            placement: Placement::RoundRobin,
        }
    }
}

/// The pool-backed KV store.
#[derive(Debug)]
pub struct KvStore {
    config: KvConfig,
    /// Segment per slot group, in key order.
    segments: Vec<SegmentId>,
    gets: Counter,
    puts: Counter,
    local_ops: Counter,
    remote_ops: Counter,
}

impl KvStore {
    /// Create the store, placing slot segments per `config.placement`
    /// (round-robin across servers by default).
    pub fn create(pool: &mut LogicalPool, config: KvConfig) -> Result<Self, PoolError> {
        if config.slots == 0 || config.slots_per_segment == 0 {
            return Err(PoolError::InvalidRequest("KvConfig needs nonzero slots"));
        }
        let nsegs = config.slots.div_ceil(config.slots_per_segment);
        let mut segments = Vec::with_capacity(nsegs as usize);
        for _ in 0..nsegs {
            segments.push(pool.alloc(
                config.slots_per_segment * SLOT_BYTES,
                config.placement,
            )?);
        }
        Ok(KvStore {
            config,
            segments,
            gets: Counter::new(),
            puts: Counter::new(),
            local_ops: Counter::new(),
            remote_ops: Counter::new(),
        })
    }

    fn addr_of(&self, key: u64) -> Result<LogicalAddr, PoolError> {
        if key >= self.config.slots {
            return Err(PoolError::InvalidRequest("key out of the keyspace"));
        }
        let seg = self.segments[(key / self.config.slots_per_segment) as usize];
        Ok(LogicalAddr::new(
            seg,
            (key % self.config.slots_per_segment) * SLOT_BYTES,
        ))
    }

    /// Timed + materialized GET. Returns the value bytes and completion.
    pub fn get(
        &mut self,
        pool: &mut LogicalPool,
        fabric: &mut Fabric,
        now: SimTime,
        client: NodeId,
        key: u64,
    ) -> Result<(Vec<u8>, SimTime), PoolError> {
        let addr = self.addr_of(key)?;
        let a = pool.access(fabric, now, client, addr, SLOT_BYTES, MemOp::Read)?;
        self.gets.inc();
        self.account(&a);
        let value = pool.read_bytes(addr, SLOT_BYTES)?;
        Ok((value, a.complete))
    }

    /// Timed + materialized PUT. Rejects values longer than
    /// [`SLOT_BYTES`] with [`PoolError::InvalidRequest`].
    pub fn put(
        &mut self,
        pool: &mut LogicalPool,
        fabric: &mut Fabric,
        now: SimTime,
        client: NodeId,
        key: u64,
        value: &[u8],
    ) -> Result<SimTime, PoolError> {
        if value.len() as u64 > SLOT_BYTES {
            return Err(PoolError::InvalidRequest("value exceeds the KV slot"));
        }
        let addr = self.addr_of(key)?;
        let a = pool.access(fabric, now, client, addr, SLOT_BYTES, MemOp::Write)?;
        self.puts.inc();
        self.account(&a);
        let mut padded = vec![0u8; SLOT_BYTES as usize];
        padded[..value.len()].copy_from_slice(value);
        pool.write_bytes(addr, &padded)?;
        Ok(a.complete)
    }

    /// Batched multi-key GET: one scatter-gather pool access for every key,
    /// so slots sharing a holder ride one pipelined fabric stream (and
    /// adjacent slots coalesce into single DRAM runs). Returns the values
    /// in `keys` order and the batch completion time. Counts one get per
    /// key — accounting is identical to issuing [`KvStore::get`] per key.
    pub fn multi_get(
        &mut self,
        pool: &mut LogicalPool,
        fabric: &mut Fabric,
        now: SimTime,
        client: NodeId,
        keys: &[u64],
    ) -> Result<(Vec<Vec<u8>>, SimTime), PoolError> {
        let mut ops = Vec::with_capacity(keys.len());
        for &k in keys {
            ops.push(BatchOp::read(self.addr_of(k)?, SLOT_BYTES));
        }
        let r = pool.access_batch(fabric, now, client, &ops)?;
        self.gets.add(keys.len() as u64);
        for a in &r.ops {
            self.account(a);
        }
        let mut values = Vec::with_capacity(keys.len());
        for &k in keys {
            values.push(pool.read_bytes(self.addr_of(k)?, SLOT_BYTES)?);
        }
        Ok((values, r.complete))
    }

    /// Batched multi-key PUT; the write analogue of [`KvStore::multi_get`].
    /// Rejects any value longer than [`SLOT_BYTES`] with
    /// [`PoolError::InvalidRequest`] before any write is issued.
    pub fn multi_put(
        &mut self,
        pool: &mut LogicalPool,
        fabric: &mut Fabric,
        now: SimTime,
        client: NodeId,
        entries: &[(u64, &[u8])],
    ) -> Result<SimTime, PoolError> {
        let mut ops = Vec::with_capacity(entries.len());
        for &(k, v) in entries {
            if v.len() as u64 > SLOT_BYTES {
                return Err(PoolError::InvalidRequest("value exceeds the KV slot"));
            }
            ops.push(BatchOp::write(self.addr_of(k)?, SLOT_BYTES));
        }
        let r = pool.access_batch(fabric, now, client, &ops)?;
        self.puts.add(entries.len() as u64);
        for a in &r.ops {
            self.account(a);
        }
        for &(k, v) in entries {
            let mut padded = vec![0u8; SLOT_BYTES as usize];
            padded[..v.len()].copy_from_slice(v);
            pool.write_bytes(self.addr_of(k)?, &padded)?;
        }
        Ok(r.complete)
    }

    fn account(&mut self, a: &PoolAccess) {
        if a.remote_bytes == 0 {
            self.local_ops.inc();
        } else {
            self.remote_ops.inc();
        }
    }

    /// `(gets, puts)` so far.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.gets.get(), self.puts.get())
    }

    /// Fraction of operations that resolved locally.
    pub fn local_fraction(&self) -> f64 {
        let l = self.local_ops.get();
        let r = self.remote_ops.get();
        if l + r == 0 {
            return 0.0;
        }
        l as f64 / (l + r) as f64
    }

    /// The segment that backs `key` (for tests and balancing checks), or
    /// an error for a key outside the keyspace.
    pub fn segment_of(&self, key: u64) -> Result<SegmentId, PoolError> {
        Ok(self.addr_of(key)?.segment)
    }

    /// Export store counters into a telemetry registry.
    pub fn export_into(&self, reg: &mut lmp_telemetry::MetricRegistry) {
        reg.fill_counter("kv.gets", &[], self.gets);
        reg.fill_counter("kv.puts", &[], self.puts);
        reg.fill_counter("kv.ops.local", &[], self.local_ops);
        reg.fill_counter("kv.ops.remote", &[], self.remote_ops);
    }
}

/// A zipfian client mix driving a [`KvStore`].
#[derive(Debug)]
pub struct KvWorkload {
    rng: DetRng,
    zipf: Zipf<f64>,
    write_fraction: f64,
    slots: u64,
}

impl KvWorkload {
    /// A workload over `config`'s key space, seeded deterministically.
    // Config contract: slots >= 1 and a clamped exponent make Zipf::new
    // infallible; a bad KvConfig is an experiment-setup bug.
    #[allow(clippy::expect_used)]
    pub fn new(config: &KvConfig, rng: DetRng) -> Self {
        KvWorkload {
            rng,
            zipf: Zipf::new(config.slots, config.zipf_exponent.max(1e-9))
                // lmp-lint: allow(no-panic) — `slots > 0` and the clamped
                // exponent make these parameters valid by construction.
                .expect("valid zipf parameters"),
            write_fraction: config.write_fraction,
            slots: config.slots,
        }
    }

    /// Next `(key, is_write)` pair.
    pub fn next_op(&mut self) -> (u64, bool) {
        let key = (self.zipf.sample(&mut self.rng) as u64 - 1).min(self.slots - 1);
        let is_write = self.rng.gen::<f64>() < self.write_fraction;
        (key, is_write)
    }

    /// Run `ops` operations from `client`, returning the completion time of
    /// the last one and the average latency in nanoseconds.
    pub fn run(
        &mut self,
        store: &mut KvStore,
        pool: &mut LogicalPool,
        fabric: &mut Fabric,
        start: SimTime,
        client: NodeId,
        ops: u64,
    ) -> Result<(SimTime, f64), PoolError> {
        let mut now = start;
        let mut total_ns = 0u64;
        for i in 0..ops {
            let (key, is_write) = self.next_op();
            let begin = now;
            now = if is_write {
                store.put(pool, fabric, now, client, key, &i.to_le_bytes())?
            } else {
                store.get(pool, fabric, now, client, key)?.1
            };
            total_ns += now.duration_since(begin).as_nanos();
        }
        Ok((now, total_ns as f64 / ops.max(1) as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmp_fabric::LinkProfile;
    use lmp_mem::{DramProfile, FRAME_BYTES};

    fn setup() -> (LogicalPool, Fabric) {
        let cfg = PoolConfig {
            servers: 4,
            capacity_per_server: 32 * FRAME_BYTES,
            shared_per_server: 24 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 64,
        };
        (LogicalPool::new(cfg), Fabric::new(LinkProfile::link1(), 4))
    }

    #[test]
    fn put_get_round_trip() {
        let (mut p, mut f) = setup();
        let mut kv = KvStore::create(&mut p, KvConfig::default()).unwrap();
        kv.put(&mut p, &mut f, SimTime::ZERO, NodeId(0), 42, b"hello")
            .unwrap();
        let (v, _) = kv.get(&mut p, &mut f, SimTime::ZERO, NodeId(1), 42).unwrap();
        assert_eq!(&v[..5], b"hello");
        assert_eq!(kv.op_counts(), (1, 1));
    }

    #[test]
    fn multi_get_matches_single_gets() {
        let (mut p, mut f) = setup();
        let cfg = KvConfig {
            slots: 512,
            slots_per_segment: 64,
            ..KvConfig::default()
        };
        let mut kv = KvStore::create(&mut p, cfg).unwrap();
        let keys = [0u64, 1, 63, 64, 200, 511];
        let entries: Vec<(u64, Vec<u8>)> = keys
            .iter()
            .map(|&k| (k, format!("value-{k}").into_bytes()))
            .collect();
        let borrowed: Vec<(u64, &[u8])> =
            entries.iter().map(|(k, v)| (*k, v.as_slice())).collect();
        let end = kv
            .multi_put(&mut p, &mut f, SimTime::ZERO, NodeId(1), &borrowed)
            .unwrap();
        assert!(end > SimTime::ZERO);

        let (values, batch_end) = kv
            .multi_get(&mut p, &mut f, SimTime::ZERO, NodeId(1), &keys)
            .unwrap();
        assert!(batch_end > SimTime::ZERO);
        for ((k, want), got) in entries.iter().zip(&values) {
            assert_eq!(&got[..want.len()], &want[..], "key {k}");
            let (single, _) = kv.get(&mut p, &mut f, SimTime::ZERO, NodeId(1), *k).unwrap();
            assert_eq!(got, &single, "batched and single reads agree");
        }
        // Accounting: 6 batched puts + 6 batched gets + 6 verify gets.
        assert_eq!(kv.op_counts(), (12, 6));
    }

    #[test]
    fn multi_get_batches_fabric_streams() {
        let (mut p, mut f) = setup();
        let cfg = KvConfig {
            slots: 512,
            slots_per_segment: 64,
            ..KvConfig::default()
        };
        let mut kv = KvStore::create(&mut p, cfg).unwrap();
        // All keys in one remote segment: the batch should cross the fabric
        // as one coalesced stream, not one transfer per key.
        let keys: Vec<u64> = (0..8).collect();
        let client = (0..4)
            .map(NodeId)
            .find(|c| p.holder_of(kv.segment_of(0).unwrap()) != Some(*c))
            .unwrap();
        kv.multi_get(&mut p, &mut f, SimTime::ZERO, client, &keys)
            .unwrap();
        assert_eq!(f.read_count(), 8, "one logical read op per key");
        assert_eq!(kv.op_counts(), (8, 0));
        // 8 adjacent 256 B slots coalesce into one 2 KiB DRAM run.
        let holder = p.holder_of(kv.segment_of(0).unwrap()).unwrap();
        assert_eq!(p.node(holder).dram().access_count(), 1);
    }

    #[test]
    fn segments_spread_across_servers() {
        let (mut p, _) = setup();
        let kv = KvStore::create(&mut p, KvConfig::default()).unwrap();
        let homes: std::collections::HashSet<_> = (0..kv.segments.len() as u64)
            .map(|i| p.holder_of(kv.segments[i as usize]).unwrap())
            .collect();
        assert!(homes.len() > 1, "round-robin placement should spread");
    }

    #[test]
    fn zipf_is_skewed_and_deterministic() {
        let cfg = KvConfig::default();
        let mut a = KvWorkload::new(&cfg, DetRng::new(7));
        let mut b = KvWorkload::new(&cfg, DetRng::new(7));
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            let (ka, wa) = a.next_op();
            let (kb, wb) = b.next_op();
            assert_eq!((ka, wa), (kb, wb), "same seed, same stream");
            *counts.entry(ka).or_insert(0u64) += 1;
        }
        // The hottest key should dominate a uniform share by far.
        let max = counts.values().max().copied().unwrap();
        assert!(max > 500, "zipf skew too weak: max {max} of 10000");
    }

    #[test]
    fn workload_runs_and_reports_latency() {
        let (mut p, mut f) = setup();
        let cfg = KvConfig {
            slots: 512,
            slots_per_segment: 64,
            ..KvConfig::default()
        };
        let mut kv = KvStore::create(&mut p, cfg.clone()).unwrap();
        let mut w = KvWorkload::new(&cfg, DetRng::new(1));
        let (end, avg_ns) = w
            .run(&mut kv, &mut p, &mut f, SimTime::ZERO, NodeId(0), 500)
            .unwrap();
        assert!(end > SimTime::ZERO);
        // Latencies must sit between pure-local and loaded-remote bounds.
        assert!(avg_ns > 80.0 && avg_ns < 2_000.0, "avg {avg_ns}ns");
        assert!(kv.local_fraction() > 0.0 && kv.local_fraction() < 1.0);
    }

    #[test]
    fn balancer_migrates_hot_kv_segments_toward_client() {
        let (mut p, mut f) = setup();
        let cfg = KvConfig {
            slots: 512,
            slots_per_segment: 64,
            zipf_exponent: 1.2,
            write_fraction: 0.0,
            ..KvConfig::default()
        };
        let mut kv = KvStore::create(&mut p, cfg.clone()).unwrap();
        let mut w = KvWorkload::new(&cfg, DetRng::new(3));
        // One dominant client hammers the store.
        w.run(&mut kv, &mut p, &mut f, SimTime::ZERO, NodeId(2), 3_000)
            .unwrap();
        let before = kv.local_fraction();
        let mut bal = LocalityBalancer::new(BalancerConfig {
            max_migrations_per_round: 16,
            ..Default::default()
        });
        bal.run_round(&mut p, &mut f, SimTime::ZERO);
        assert!(bal.migration_count() > 0, "hot segments should move");
        // Re-run the same mix: locality must improve.
        let mut w2 = KvWorkload::new(&cfg, DetRng::new(3));
        // Reset counters so local_fraction reflects only the re-run.
        kv.local_ops.take();
        kv.remote_ops.take();
        w2.run(&mut kv, &mut p, &mut f, SimTime::ZERO, NodeId(2), 3_000)
            .unwrap();
        let after = kv.local_fraction();
        assert!(
            after > before,
            "locality should improve: {before:.2} -> {after:.2}"
        );
    }
}
