//! The paper's vector-aggregation microbenchmark (§4.1).
//!
//! "We measure the bandwidth used by a multi-core server as it performs an
//! aggregation on a large vector in disaggregated memory. … one server
//! computes the sum of a vector using 14 cores … We repeat this process 10
//! times and report the average bandwidth. … four vector sizes: 8GB, 24GB,
//! 64GB, 96GB." This module runs exactly that protocol over any
//! [`Cluster`], producing the rows Figures 2–5 plot.

use lmp_cluster::{Cluster, ClusterConfig, ClusterError, PoolArch};
use lmp_fabric::{LinkProfile, NodeId};
use lmp_sim::units::GIB;

/// The paper's four vector sizes, in bytes.
pub fn paper_sizes() -> [u64; 4] {
    [8 * GIB, 24 * GIB, 64 * GIB, 96 * GIB]
}

/// The paper's repetition count.
pub const PAPER_REPS: u32 = 10;

/// One figure row: an architecture's result for one (size, link) point.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureRow {
    /// Link profile name ("Link0"/"Link1").
    pub link: String,
    /// Vector size in bytes.
    pub size: u64,
    /// Architecture label.
    pub arch: &'static str,
    /// Average bandwidth in GB/s, or `None` when the workload is
    /// infeasible on this deployment (Figure 5's physical-pool outcome).
    pub avg_gbps: Option<f64>,
    /// Per-repetition bandwidths (empty when infeasible).
    pub per_rep_gbps: Vec<f64>,
}

/// Run the microbenchmark for one architecture at one point.
pub fn run_point(
    arch: PoolArch,
    link: LinkProfile,
    size: u64,
    reps: u32,
) -> FigureRow {
    let link_name = link.name.clone();
    let mut cluster = Cluster::new(ClusterConfig::paper(arch, link));
    match cluster.run_aggregation(size, NodeId(0), reps) {
        Ok(r) => FigureRow {
            link: link_name,
            size,
            arch: arch.label(),
            avg_gbps: Some(r.avg_bandwidth_gbps),
            per_rep_gbps: r.per_rep_gbps,
        },
        Err(ClusterError::Infeasible { .. }) => FigureRow {
            link: link_name,
            size,
            arch: arch.label(),
            avg_gbps: None,
            per_rep_gbps: Vec::new(),
        },
        Err(e) => panic!("unexpected benchmark failure: {e}"),
    }
}

/// Run one full figure (all three architectures, both links) for `size`.
pub fn run_figure(size: u64, reps: u32) -> Vec<FigureRow> {
    let mut rows = Vec::new();
    for link in [LinkProfile::link0(), LinkProfile::link1()] {
        for arch in [
            PoolArch::Logical,
            PoolArch::PhysicalCache,
            PoolArch::PhysicalNoCache,
        ] {
            rows.push(run_point(arch, link.clone(), size, reps));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    // Full-scale single-point runs are fast (phantom memory), so the tests
    // check the paper's qualitative claims directly at paper scale, with
    // fewer reps to stay quick.

    #[test]
    fn figure2_shape_8gb() {
        let logical = run_point(PoolArch::Logical, LinkProfile::link1(), 8 * GIB, 2);
        let nocache = run_point(PoolArch::PhysicalNoCache, LinkProfile::link1(), 8 * GIB, 2);
        let l = logical.avg_gbps.unwrap();
        let n = nocache.avg_gbps.unwrap();
        assert!(
            l / n > 4.0 && l / n < 5.5,
            "8GB Link1 advantage should be ~4.7x, got {:.2}",
            l / n
        );
    }

    #[test]
    fn figure5_shape_96gb() {
        let logical = run_point(PoolArch::Logical, LinkProfile::link1(), 96 * GIB, 1);
        let cache = run_point(PoolArch::PhysicalCache, LinkProfile::link1(), 96 * GIB, 1);
        let nocache = run_point(PoolArch::PhysicalNoCache, LinkProfile::link1(), 96 * GIB, 1);
        assert!(logical.avg_gbps.is_some(), "logical must fit 96GB");
        assert!(cache.avg_gbps.is_none(), "physical cache must be infeasible");
        assert!(nocache.avg_gbps.is_none(), "physical no-cache must be infeasible");
    }

    #[test]
    fn slower_link_widens_logical_advantage() {
        let size = 64 * GIB;
        let l0_log = run_point(PoolArch::Logical, LinkProfile::link0(), size, 1)
            .avg_gbps
            .unwrap();
        let l0_cache = run_point(PoolArch::PhysicalCache, LinkProfile::link0(), size, 1)
            .avg_gbps
            .unwrap();
        let l1_log = run_point(PoolArch::Logical, LinkProfile::link1(), size, 1)
            .avg_gbps
            .unwrap();
        let l1_cache = run_point(PoolArch::PhysicalCache, LinkProfile::link1(), size, 1)
            .avg_gbps
            .unwrap();
        // §4.3: "the slower the remote link, the better the performance of
        // LMPs relative to physical pools". (Almost equal here because the
        // local fractions differ: allow equality within noise.)
        assert!(
            l1_log / l1_cache >= l0_log / l0_cache * 0.95,
            "Link1 ratio {:.2} should not trail Link0 ratio {:.2}",
            l1_log / l1_cache,
            l0_log / l0_cache
        );
    }

    #[test]
    fn sizes_match_paper() {
        assert_eq!(paper_sizes(), [8 * GIB, 24 * GIB, 64 * GIB, 96 * GIB]);
        assert_eq!(PAPER_REPS, 10);
    }
}
