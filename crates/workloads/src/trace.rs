//! Synthetic access traces and replay.
//!
//! The sizing optimizer and locality balancer need workloads with phases
//! and skew to prove themselves. A [`TraceSpec`] generates deterministic
//! access streams (sequential, uniform, zipfian, phase-shifting) that can
//! be replayed against a pool from any set of clients.

use lmp_core::prelude::*;
use lmp_fabric::{Fabric, MemOp, NodeId};
use lmp_sim::prelude::*;
use rand_distr::{Distribution, Zipf};

/// Access-pattern families.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Linear sweep with wraparound.
    Sequential,
    /// Uniform random offsets.
    Uniform,
    /// Zipf-skewed offsets with the given exponent.
    Zipfian(f64),
    /// A hot region (10% of the buffer) that rotates through the buffer
    /// over the trace — the phase-shifting behaviour that makes static
    /// placement decay and keeps the locality balancer honest.
    PhasedHotspot {
        /// Number of distinct hot-region positions over the trace.
        phases: u32,
    },
}

/// A trace description.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Access pattern.
    pub pattern: Pattern,
    /// Bytes per access.
    pub access_bytes: u64,
    /// Fraction of writes.
    pub write_fraction: f64,
    /// Number of accesses.
    pub length: u64,
}

/// One generated access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Byte offset into the target buffer.
    pub offset: u64,
    /// Read or write.
    pub op: MemOp,
}

impl TraceSpec {
    /// Generate the trace for a buffer of `buffer_len` bytes.
    // Config contract: a zero-position buffer or invalid zipf exponent is
    // a caller bug in experiment setup, trapped loudly.
    #[allow(clippy::expect_used)]
    pub fn generate(&self, buffer_len: u64, mut rng: DetRng) -> Vec<TraceOp> {
        // lmp-lint: allow(no-panic) — generate returns the trace by value; an
        // access larger than the buffer is an experiment-setup bug.
        assert!(self.access_bytes > 0 && self.access_bytes <= buffer_len);
        let positions = buffer_len / self.access_bytes;
        // lmp-lint: allow(no-panic) — positions is nonzero whenever
        // access_bytes <= buffer_len, checked just above.
        assert!(positions > 0);
        let zipf = match self.pattern {
            // lmp-lint: allow(no-panic) — positions >= 1 and the clamped
            // exponent make the zipf parameters valid by construction.
            Pattern::Zipfian(s) => Some(Zipf::new(positions, s.max(1e-9)).expect("valid zipf")),
            _ => None,
        };
        let mut out = Vec::with_capacity(self.length as usize);
        for i in 0..self.length {
            let slot = match self.pattern {
                Pattern::Sequential => i % positions,
                Pattern::Uniform => rng.below(positions),
                Pattern::Zipfian(_) => {
                    // lmp-lint: allow(no-panic) — the zipf table is built in
                    // the Zipfian arm above; this arm only runs for that
                    // pattern.
                    (zipf.as_ref().expect("zipf built").sample(&mut rng) as u64 - 1)
                        .min(positions - 1)
                }
                Pattern::PhasedHotspot { phases } => {
                    // lmp-lint: allow(no-panic) — phase-count precondition on
                    // the pattern itself; a zero-phase hotspot is an
                    // experiment-setup bug.
                    assert!(phases > 0, "need at least one phase");
                    let phase = (i * phases as u64 / self.length.max(1)).min(phases as u64 - 1);
                    let hot_len = (positions / 10).max(1);
                    let hot_base = (phase * positions / phases as u64) % positions;
                    (hot_base + rng.below(hot_len)) % positions
                }
            };
            let op = if rng.chance(self.write_fraction) {
                MemOp::Write
            } else {
                MemOp::Read
            };
            out.push(TraceOp {
                offset: slot * self.access_bytes,
                op,
            });
        }
        out
    }
}

/// Result of replaying a trace.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Completion time of the last access.
    pub complete: SimTime,
    /// Per-access latency distribution (ns).
    pub latency: Histogram,
    /// Bytes resolved locally.
    pub local_bytes: u64,
    /// Bytes that crossed the fabric.
    pub remote_bytes: u64,
}

/// Replay `trace` against `seg` from `client`, each access dependent on
/// the previous (closed loop, one outstanding access).
pub fn replay(
    pool: &mut LogicalPool,
    fabric: &mut Fabric,
    start: SimTime,
    client: NodeId,
    seg: SegmentId,
    trace: &[TraceOp],
    access_bytes: u64,
) -> Result<ReplayResult, PoolError> {
    let mut now = start;
    let mut latency = Histogram::new();
    let mut local = 0u64;
    let mut remote = 0u64;
    for t in trace {
        let a = pool.access(
            fabric,
            now,
            client,
            LogicalAddr::new(seg, t.offset),
            access_bytes,
            t.op,
        )?;
        latency.record(a.complete.duration_since(now).as_nanos());
        local += a.local_bytes;
        remote += a.remote_bytes;
        now = a.complete;
    }
    Ok(ReplayResult {
        complete: now,
        latency,
        local_bytes: local,
        remote_bytes: remote,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmp_fabric::LinkProfile;
    use lmp_mem::{DramProfile, FRAME_BYTES};

    fn setup() -> (LogicalPool, Fabric) {
        let cfg = PoolConfig {
            servers: 2,
            capacity_per_server: 16 * FRAME_BYTES,
            shared_per_server: 12 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 16,
        };
        (LogicalPool::new(cfg), Fabric::new(LinkProfile::link1(), 2))
    }

    #[test]
    fn sequential_wraps() {
        let spec = TraceSpec {
            pattern: Pattern::Sequential,
            access_bytes: 64,
            write_fraction: 0.0,
            length: 10,
        };
        let trace = spec.generate(256, DetRng::new(1));
        let offsets: Vec<u64> = trace.iter().map(|t| t.offset).collect();
        assert_eq!(offsets, [0, 64, 128, 192, 0, 64, 128, 192, 0, 64]);
    }

    #[test]
    fn traces_are_deterministic() {
        let spec = TraceSpec {
            pattern: Pattern::Zipfian(1.1),
            access_bytes: 64,
            write_fraction: 0.3,
            length: 100,
        };
        let a = spec.generate(1 << 20, DetRng::new(9));
        let b = spec.generate(1 << 20, DetRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn offsets_stay_in_bounds() {
        for pattern in [Pattern::Sequential, Pattern::Uniform, Pattern::Zipfian(0.9)] {
            let spec = TraceSpec {
                pattern,
                access_bytes: 128,
                write_fraction: 0.5,
                length: 500,
            };
            let buffer = 64 * 1024;
            for t in spec.generate(buffer, DetRng::new(4)) {
                assert!(t.offset + 128 <= buffer, "{pattern:?} out of bounds");
            }
        }
    }

    #[test]
    fn phased_hotspot_shifts() {
        let spec = TraceSpec {
            pattern: Pattern::PhasedHotspot { phases: 2 },
            access_bytes: 64,
            write_fraction: 0.0,
            length: 1_000,
        };
        let buffer = 64 * 64_000; // 64000 positions
        let trace = spec.generate(buffer, DetRng::new(7));
        let first: Vec<u64> = trace[..500].iter().map(|t| t.offset / 64).collect();
        let second: Vec<u64> = trace[500..].iter().map(|t| t.offset / 64).collect();
        // Phase 1 lives in the first 10%, phase 2 starts at the midpoint.
        assert!(first.iter().all(|&p| p < 6_400), "phase 1 outside hot region");
        assert!(second.iter().all(|&p| (32_000..38_400).contains(&p)));
    }

    #[test]
    fn replay_latency_reflects_placement() {
        let (mut p, mut f) = setup();
        let seg = p.alloc(2 * FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let spec = TraceSpec {
            pattern: Pattern::Uniform,
            access_bytes: 64,
            write_fraction: 0.0,
            length: 200,
        };
        let trace = spec.generate(2 * FRAME_BYTES, DetRng::new(2));
        let local = replay(&mut p, &mut f, SimTime::ZERO, NodeId(0), seg, &trace, 64).unwrap();
        let remote = replay(&mut p, &mut f, local.complete, NodeId(1), seg, &trace, 64).unwrap();
        assert_eq!(local.remote_bytes, 0);
        assert_eq!(remote.local_bytes, 0);
        assert!(remote.latency.p50() > 2 * local.latency.p50());
    }
}
