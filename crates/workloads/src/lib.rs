// Tests may unwrap/expect freely; production code must not (see crates/lint).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # lmp-workloads — workload generators
//!
//! The workloads that drive the evaluation and examples:
//!
//! * [`vector`] — the paper's §4.1 multi-core vector-aggregation
//!   microbenchmark (Figures 2–5), runnable on every deployment.
//! * [`kv`] — a zipfian key-value store over the logical pool (the
//!   RDMA-era application class §6 expects to carry over).
//! * [`graph`] — latency-bound BFS pointer chasing over pooled CSR graphs.
//! * [`trace`] — deterministic synthetic access traces and replay.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod graph;
pub mod kv;
pub mod multitenant;
pub mod trace;
pub mod vector;

pub use graph::{bfs, BfsResult, PoolGraph};
pub use kv::{KvConfig, KvStore, KvWorkload, SLOT_BYTES};
pub use multitenant::{MultiTenantReport, Tenant, TenantReport};
pub use trace::{replay, Pattern, ReplayResult, TraceOp, TraceSpec};
pub use vector::{paper_sizes, run_figure, run_point, FigureRow, PAPER_REPS};
