//! The coherent shared-memory region.
//!
//! Combines the MSI directory ([`crate::directory::Directory`]), the bounded
//! snoop filter ([`crate::filter::SnoopFilter`]), and word storage into the
//! "few GBs of coherent memory for coordination and synchronization" of
//! §3.2. Every operation returns a [`CoherenceCost`] — the latency and
//! message count a hardware engine would incur — so synchronization
//! primitives built on top can be compared by traffic, which is how the
//! paper frames the coherence challenge.

use crate::config::{BlockId, CoherenceConfig, EnginePlacement, NodeId};
use crate::directory::{CohMessage, Directory};
use crate::filter::{FilterOutcome, SnoopFilter};
use lmp_sim::time::SimDuration;
use std::collections::BTreeMap;

/// Cost of one coherent operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoherenceCost {
    /// Modelled completion latency.
    pub latency: SimDuration,
    /// Protocol messages exchanged (invalidate, fetch, downgrade, …).
    pub messages: u64,
    /// Back-invalidations triggered by snoop-filter pressure.
    pub back_invalidations: u64,
}

impl CoherenceCost {
    /// Accumulate another cost into this one.
    pub fn absorb(&mut self, other: CoherenceCost) {
        self.latency += other.latency;
        self.messages += other.messages;
        self.back_invalidations += other.back_invalidations;
    }
}

/// Error raised when an access touches memory outside the region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfRegion {
    /// The offending coherent address.
    pub addr: u64,
    /// The region size in bytes.
    pub size: u64,
}

impl std::fmt::Display for OutOfRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "address {} outside coherent region of {} bytes", self.addr, self.size)
    }
}

impl std::error::Error for OutOfRegion {}

/// A software-modelled coherent region storing 8-byte words.
#[derive(Debug)]
pub struct CoherentRegion {
    config: CoherenceConfig,
    size_bytes: u64,
    dir: Directory,
    filter: SnoopFilter,
    words: BTreeMap<u64, u64>,
    total_cost: CoherenceCost,
    ops: u64,
}

impl CoherentRegion {
    /// A region of `size_bytes` with the given configuration.
    pub fn new(config: CoherenceConfig, size_bytes: u64) -> Self {
        let filter = SnoopFilter::new(config.filter_capacity);
        CoherentRegion {
            config,
            size_bytes,
            dir: Directory::new(),
            filter,
            words: BTreeMap::new(),
            total_cost: CoherenceCost::default(),
            ops: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &CoherenceConfig {
        &self.config
    }

    /// Region size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Load the word at `addr` as `node`.
    pub fn load(&mut self, node: NodeId, addr: u64) -> Result<(u64, CoherenceCost), OutOfRegion> {
        self.check(addr)?;
        let block = self.config.block_of(addr);
        let access = self.dir.read(block, node);
        let cost = self.settle(block, access.hit, &access.messages);
        Ok((self.words.get(&addr).copied().unwrap_or(0), cost))
    }

    /// Store `value` to the word at `addr` as `node`.
    pub fn store(
        &mut self,
        node: NodeId,
        addr: u64,
        value: u64,
    ) -> Result<CoherenceCost, OutOfRegion> {
        self.check(addr)?;
        let block = self.config.block_of(addr);
        let access = self.dir.write(block, node);
        let cost = self.settle(block, access.hit, &access.messages);
        self.words.insert(addr, value);
        Ok(cost)
    }

    /// Atomic compare-and-swap on the word at `addr`. Returns whether the
    /// swap happened. A CAS is a write in the protocol whether or not it
    /// succeeds (the line must be owned exclusively to arbitrate).
    pub fn cas(
        &mut self,
        node: NodeId,
        addr: u64,
        expected: u64,
        new: u64,
    ) -> Result<(bool, CoherenceCost), OutOfRegion> {
        self.check(addr)?;
        let block = self.config.block_of(addr);
        let access = self.dir.write(block, node);
        let cost = self.settle(block, access.hit, &access.messages);
        let cur = self.words.get(&addr).copied().unwrap_or(0);
        if cur == expected {
            self.words.insert(addr, new);
            Ok((true, cost))
        } else {
            Ok((false, cost))
        }
    }

    /// Atomic fetch-and-add; returns the previous value.
    pub fn fetch_add(
        &mut self,
        node: NodeId,
        addr: u64,
        delta: u64,
    ) -> Result<(u64, CoherenceCost), OutOfRegion> {
        self.check(addr)?;
        let block = self.config.block_of(addr);
        let access = self.dir.write(block, node);
        let cost = self.settle(block, access.hit, &access.messages);
        let cur = self.words.get(&addr).copied().unwrap_or(0);
        self.words.insert(addr, cur.wrapping_add(delta));
        Ok((cur, cost))
    }

    /// A node crashed: purge its copies. Returns the blocks whose only
    /// (dirty) copy lived there — data lost unless otherwise protected.
    pub fn purge_node(&mut self, node: NodeId) -> Vec<BlockId> {
        self.dir.purge_node(node)
    }

    /// Directory telemetry.
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// Snoop-filter telemetry.
    pub fn filter(&self) -> &SnoopFilter {
        &self.filter
    }

    /// Sum of all operation costs so far.
    pub fn total_cost(&self) -> CoherenceCost {
        self.total_cost
    }

    /// Total operations served.
    pub fn op_count(&self) -> u64 {
        self.ops
    }

    /// Export directory and filter traffic into a telemetry registry,
    /// labelling every instrument with `region`.
    pub fn export_into(&self, region: &str, reg: &mut lmp_telemetry::MetricRegistry) {
        let labels = [("region", region)];
        reg.fill_counter_value("coherence.ops", &labels, self.ops);
        reg.fill_counter_value("coherence.dir.reads", &labels, self.dir.read_count());
        reg.fill_counter_value("coherence.dir.writes", &labels, self.dir.write_count());
        reg.fill_counter_value(
            "coherence.dir.invalidations",
            &labels,
            self.dir.invalidation_count(),
        );
        reg.fill_counter_value(
            "coherence.dir.downgrades",
            &labels,
            self.dir.downgrade_count(),
        );
        reg.fill_counter_value(
            "coherence.filter.back_invalidations",
            &labels,
            self.filter.back_invalidation_count(),
        );
        reg.fill_counter_value("coherence.messages", &labels, self.total_cost.messages);
    }

    fn check(&self, addr: u64) -> Result<(), OutOfRegion> {
        if addr + 8 > self.size_bytes {
            Err(OutOfRegion {
                addr,
                size: self.size_bytes,
            })
        } else {
            Ok(())
        }
    }

    fn settle(&mut self, block: BlockId, hit: bool, messages: &[CohMessage]) -> CoherenceCost {
        self.ops += 1;
        let mut cost = CoherenceCost {
            latency: self.config.interpose,
            messages: 0,
            back_invalidations: 0,
        };
        if self.config.placement == EnginePlacement::Switch {
            // Reaching the engine in the switch is a fabric hop.
            cost.latency += self.config.message_latency;
        }
        for m in messages {
            let n = match m {
                CohMessage::Invalidate { sharers } => sharers.len() as u64,
                _ => 1,
            };
            cost.messages += n;
            // Invalidations fan out in parallel; pay one serialized hop per
            // message type.
            cost.latency += self.config.message_latency;
        }
        // Inclusive filter tracks every block with remote copies.
        if !hit {
            match self.filter.touch(block) {
                FilterOutcome::Evicted(victim) => {
                    let holders = self.dir.evict(victim);
                    cost.back_invalidations += 1;
                    cost.messages += holders.len() as u64;
                    cost.latency += self.config.message_latency;
                }
                FilterOutcome::Present | FilterOutcome::Inserted => {}
            }
        }
        self.total_cost.absorb(cost);
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmp_sim::units::MIB;

    fn region() -> CoherentRegion {
        CoherentRegion::new(CoherenceConfig::default_lmp(), MIB)
    }

    #[test]
    fn load_store_round_trip() {
        let mut r = region();
        r.store(0, 64, 42).unwrap();
        let (v, _) = r.load(1, 64).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn out_of_region_rejected() {
        let mut r = region();
        assert!(r.load(0, MIB).is_err());
        assert!(r.store(0, MIB - 7, 1).is_err());
        assert!(r.load(0, MIB - 8).is_ok());
    }

    #[test]
    fn cas_semantics() {
        let mut r = region();
        let (ok, _) = r.cas(0, 0, 0, 5).unwrap();
        assert!(ok);
        let (ok, _) = r.cas(1, 0, 0, 9).unwrap();
        assert!(!ok, "stale expected value must fail");
        let (v, _) = r.load(2, 0).unwrap();
        assert_eq!(v, 5);
    }

    #[test]
    fn fetch_add_returns_previous() {
        let mut r = region();
        assert_eq!(r.fetch_add(0, 8, 3).unwrap().0, 0);
        assert_eq!(r.fetch_add(1, 8, 3).unwrap().0, 3);
        assert_eq!(r.load(0, 8).unwrap().0, 6);
    }

    #[test]
    fn repeated_owner_access_is_cheap() {
        let mut r = region();
        let first = r.store(0, 0, 1).unwrap();
        let second = r.store(0, 0, 2).unwrap();
        assert!(second.latency <= first.latency);
        assert_eq!(second.messages, 0);
    }

    #[test]
    fn ping_pong_costs_messages() {
        let mut r = region();
        r.store(0, 0, 1).unwrap();
        let c = r.store(1, 0, 2).unwrap(); // flush owner 0
        assert!(c.messages >= 1);
        let c = r.store(0, 0, 3).unwrap(); // flush owner 1
        assert!(c.messages >= 1);
    }

    #[test]
    fn fine_granularity_avoids_false_sharing() {
        // Two nodes write adjacent 8-byte words. At 64-byte granularity they
        // ping-pong; at 16-byte granularity they do not conflict.
        let mut fine = CoherentRegion::new(CoherenceConfig::default_lmp(), MIB);
        let mut line = CoherentRegion::new(CoherenceConfig::cache_line(), MIB);
        for r in [&mut fine, &mut line] {
            r.store(0, 0, 1).unwrap();
            r.store(1, 16, 1).unwrap();
        }
        let mut fine_msgs = 0;
        let mut line_msgs = 0;
        for _ in 0..100 {
            fine_msgs += fine.store(0, 0, 2).unwrap().messages;
            fine_msgs += fine.store(1, 16, 2).unwrap().messages;
            line_msgs += line.store(0, 0, 2).unwrap().messages;
            line_msgs += line.store(1, 16, 2).unwrap().messages;
        }
        assert_eq!(fine_msgs, 0, "no false sharing at 16B granularity");
        assert!(line_msgs > 100, "64B granularity ping-pongs: {line_msgs}");
    }

    #[test]
    fn filter_overflow_back_invalidates() {
        let mut cfg = CoherenceConfig::default_lmp();
        cfg.filter_capacity = 4;
        let mut r = CoherentRegion::new(cfg, MIB);
        let mut bi = 0;
        for i in 0..64u64 {
            bi += r.load(0, i * 16).unwrap().1.back_invalidations;
        }
        assert!(bi >= 60 - 4, "expected back-invalidation storm, got {bi}");
        assert_eq!(r.total_cost().back_invalidations, bi);
    }

    #[test]
    fn purge_node_loses_dirty_words() {
        let mut r = region();
        r.store(3, 0, 77).unwrap();
        let lost = r.purge_node(3);
        assert_eq!(lost.len(), 1);
    }

    #[test]
    fn switch_placement_pays_fabric_hop() {
        let mut sw = CoherentRegion::new(CoherenceConfig::default_lmp(), MIB);
        let mut pn = CoherentRegion::new(
            CoherenceConfig {
                placement: EnginePlacement::PerNode,
                ..CoherenceConfig::default_lmp()
            },
            MIB,
        );
        let c_sw = sw.store(0, 0, 1).unwrap();
        let c_pn = pn.store(0, 0, 1).unwrap();
        assert!(c_sw.latency > c_pn.latency);
    }
}
