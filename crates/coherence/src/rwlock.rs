//! Reader-writer locks on coherent memory.
//!
//! §5 points at "NUMA-aware reader-writer locks" (Calciu et al.) as the
//! kind of coordination that keeps coherence traffic down. Two designs are
//! provided so the benefit is measurable:
//!
//! * [`CentralRwLock`] — one shared reader counter. Every reader
//!   acquisition ping-pongs the counter's block between nodes.
//! * [`NumaRwLock`] — one reader counter **per node**, each in its own
//!   coherence block. Readers touch only their node's counter (cache hits
//!   after the first access); only writers sweep all counters.

use crate::config::NodeId;
use crate::region::{CoherenceCost, CoherentRegion, OutOfRegion};

/// A naive reader-writer lock: one writer word, one shared reader count.
#[derive(Debug, Clone, Copy)]
pub struct CentralRwLock {
    writer_addr: u64,
    readers_addr: u64,
}

impl CentralRwLock {
    /// Words at `base` and `base + stride`.
    pub fn new(base: u64, stride: u64) -> Self {
        CentralRwLock {
            writer_addr: base,
            readers_addr: base + stride,
        }
    }

    /// Try to enter the read side. Fails when a writer holds the lock.
    pub fn read_acquire(
        &self,
        region: &mut CoherentRegion,
        node: NodeId,
    ) -> Result<(bool, CoherenceCost), OutOfRegion> {
        let (_, mut cost) = region.fetch_add(node, self.readers_addr, 1)?;
        let (w, c2) = region.load(node, self.writer_addr)?;
        cost.absorb(c2);
        if w != 0 {
            // Back off.
            let (_, c3) = region.fetch_add(node, self.readers_addr, u64::MAX)?;
            cost.absorb(c3);
            return Ok((false, cost));
        }
        Ok((true, cost))
    }

    /// Leave the read side.
    pub fn read_release(
        &self,
        region: &mut CoherentRegion,
        node: NodeId,
    ) -> Result<CoherenceCost, OutOfRegion> {
        let (_, cost) = region.fetch_add(node, self.readers_addr, u64::MAX)?;
        Ok(cost)
    }

    /// Try to take the write side: claims the writer word, then succeeds
    /// only when no readers are present.
    pub fn write_acquire(
        &self,
        region: &mut CoherentRegion,
        node: NodeId,
    ) -> Result<(bool, CoherenceCost), OutOfRegion> {
        let (ok, mut cost) = region.cas(node, self.writer_addr, 0, node as u64 + 1)?;
        if !ok {
            return Ok((false, cost));
        }
        let (readers, c2) = region.load(node, self.readers_addr)?;
        cost.absorb(c2);
        Ok((readers == 0, cost))
    }

    /// Poll for remaining readers after a claimed write acquisition.
    pub fn write_poll(
        &self,
        region: &mut CoherentRegion,
        node: NodeId,
    ) -> Result<(bool, CoherenceCost), OutOfRegion> {
        let (readers, cost) = region.load(node, self.readers_addr)?;
        Ok((readers == 0, cost))
    }

    /// Release the write side.
    pub fn write_release(
        &self,
        region: &mut CoherentRegion,
        node: NodeId,
    ) -> Result<CoherenceCost, OutOfRegion> {
        region.store(node, self.writer_addr, 0)
    }
}

/// The NUMA-aware design: per-node reader counters in distinct blocks.
#[derive(Debug, Clone)]
pub struct NumaRwLock {
    writer_addr: u64,
    reader_addrs: Vec<u64>,
}

impl NumaRwLock {
    /// Writer word at `base`; per-node counters one `stride` apart (use at
    /// least the region granularity so they never share a block).
    pub fn new(base: u64, stride: u64, nodes: u32) -> Self {
        NumaRwLock {
            writer_addr: base,
            reader_addrs: (0..nodes).map(|n| base + stride * (n as u64 + 1)).collect(),
        }
    }

    /// Try to enter the read side (touches only this node's counter plus
    /// the writer word).
    pub fn read_acquire(
        &self,
        region: &mut CoherentRegion,
        node: NodeId,
    ) -> Result<(bool, CoherenceCost), OutOfRegion> {
        let mine = self.reader_addrs[node as usize];
        let (_, mut cost) = region.fetch_add(node, mine, 1)?;
        let (w, c2) = region.load(node, self.writer_addr)?;
        cost.absorb(c2);
        if w != 0 {
            let (_, c3) = region.fetch_add(node, mine, u64::MAX)?;
            cost.absorb(c3);
            return Ok((false, cost));
        }
        Ok((true, cost))
    }

    /// Leave the read side.
    pub fn read_release(
        &self,
        region: &mut CoherentRegion,
        node: NodeId,
    ) -> Result<CoherenceCost, OutOfRegion> {
        let (_, cost) = region.fetch_add(node, self.reader_addrs[node as usize], u64::MAX)?;
        Ok(cost)
    }

    /// Try to take the write side: claim the writer word, then sweep every
    /// node's counter.
    pub fn write_acquire(
        &self,
        region: &mut CoherentRegion,
        node: NodeId,
    ) -> Result<(bool, CoherenceCost), OutOfRegion> {
        let (ok, mut cost) = region.cas(node, self.writer_addr, 0, node as u64 + 1)?;
        if !ok {
            return Ok((false, cost));
        }
        let (clear, c2) = self.write_poll(region, node)?;
        cost.absorb(c2);
        Ok((clear, cost))
    }

    /// Re-sweep the reader counters.
    pub fn write_poll(
        &self,
        region: &mut CoherentRegion,
        node: NodeId,
    ) -> Result<(bool, CoherenceCost), OutOfRegion> {
        let mut cost = CoherenceCost::default();
        let mut clear = true;
        for &addr in &self.reader_addrs {
            let (count, c) = region.load(node, addr)?;
            cost.absorb(c);
            if count != 0 {
                clear = false;
            }
        }
        Ok((clear, cost))
    }

    /// Release the write side.
    pub fn write_release(
        &self,
        region: &mut CoherentRegion,
        node: NodeId,
    ) -> Result<CoherenceCost, OutOfRegion> {
        region.store(node, self.writer_addr, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoherenceConfig;
    use lmp_sim::units::MIB;

    fn region() -> CoherentRegion {
        CoherentRegion::new(CoherenceConfig::default_lmp(), MIB)
    }

    #[test]
    fn readers_share_writers_exclude_central() {
        let mut r = region();
        let l = CentralRwLock::new(0, 16);
        assert!(l.read_acquire(&mut r, 0).unwrap().0);
        assert!(l.read_acquire(&mut r, 1).unwrap().0, "readers share");
        let (granted, _) = l.write_acquire(&mut r, 2).unwrap();
        assert!(!granted, "readers still present");
        l.read_release(&mut r, 0).unwrap();
        l.read_release(&mut r, 1).unwrap();
        assert!(l.write_poll(&mut r, 2).unwrap().0, "now clear");
        l.write_release(&mut r, 2).unwrap();
        assert!(l.read_acquire(&mut r, 0).unwrap().0);
    }

    #[test]
    fn readers_share_writers_exclude_numa() {
        let mut r = region();
        let l = NumaRwLock::new(0, 16, 4);
        assert!(l.read_acquire(&mut r, 0).unwrap().0);
        assert!(l.read_acquire(&mut r, 3).unwrap().0);
        let (granted, _) = l.write_acquire(&mut r, 1).unwrap();
        assert!(!granted);
        l.read_release(&mut r, 0).unwrap();
        l.read_release(&mut r, 3).unwrap();
        assert!(l.write_poll(&mut r, 1).unwrap().0);
        l.write_release(&mut r, 1).unwrap();
    }

    #[test]
    fn writer_blocks_new_readers() {
        let mut r = region();
        let l = NumaRwLock::new(0, 16, 2);
        let (granted, _) = l.write_acquire(&mut r, 0).unwrap();
        assert!(granted, "no readers yet");
        let (read_ok, _) = l.read_acquire(&mut r, 1).unwrap();
        assert!(!read_ok, "writer holds the lock");
        l.write_release(&mut r, 0).unwrap();
        assert!(l.read_acquire(&mut r, 1).unwrap().0);
    }

    #[test]
    fn second_writer_loses_cas() {
        let mut r = region();
        let l = CentralRwLock::new(0, 16);
        assert!(l.write_acquire(&mut r, 0).unwrap().0);
        assert!(!l.write_acquire(&mut r, 1).unwrap().0);
    }

    #[test]
    fn numa_readers_generate_less_traffic_than_central() {
        // 4 nodes each acquire/release in round-robin many times.
        let mut r_central = region();
        let mut r_numa = region();
        let central = CentralRwLock::new(0, 16);
        let numa = NumaRwLock::new(1024, 16, 4);
        let mut central_msgs = 0;
        let mut numa_msgs = 0;
        for round in 0..200 {
            let node = round % 4;
            let (ok, c) = central.read_acquire(&mut r_central, node).unwrap();
            assert!(ok);
            central_msgs += c.messages;
            central_msgs += central.read_release(&mut r_central, node).unwrap().messages;

            let (ok, c) = numa.read_acquire(&mut r_numa, node).unwrap();
            assert!(ok);
            numa_msgs += c.messages;
            numa_msgs += numa.read_release(&mut r_numa, node).unwrap().messages;
        }
        assert!(
            numa_msgs * 2 < central_msgs,
            "numa {numa_msgs} should be well under central {central_msgs}"
        );
    }
}
