//! Bounded inclusive snoop filter.
//!
//! CXL tracks multi-host sharing in an **inclusive snoop filter**: every
//! remotely cached block must have an entry. The filter is a fixed-size
//! structure; when it fills, inserting a new block evicts a victim and
//! **back-invalidates** every cached copy of it (§2.2/§5). The paper's
//! argument for keeping the coherent region small is precisely to keep this
//! filter effective — the `coherence` bench sweeps working-set size against
//! filter capacity to show the back-invalidation cliff.

use crate::config::BlockId;
use std::collections::BTreeMap;

/// Result of touching a block in the filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterOutcome {
    /// Block already tracked.
    Present,
    /// Block inserted without eviction.
    Inserted,
    /// Block inserted; the victim must be back-invalidated everywhere.
    Evicted(BlockId),
}

/// An LRU inclusive snoop filter.
#[derive(Debug)]
pub struct SnoopFilter {
    capacity: usize,
    /// block → LRU stamp (monotone counter).
    entries: BTreeMap<BlockId, u64>,
    clock: u64,
    back_invalidations: u64,
}

impl SnoopFilter {
    /// A filter holding at most `capacity` blocks.
    ///
    /// # Panics
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        // lmp-lint: allow(no-panic) — documented `# Panics` ctor precondition;
        // a zero capacity is a configuration bug, not a runtime fault.
        assert!(capacity > 0, "snoop filter needs capacity");
        SnoopFilter {
            capacity,
            entries: BTreeMap::new(),
            clock: 0,
            back_invalidations: 0,
        }
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Blocks currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the filter is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `block` is tracked.
    pub fn contains(&self, block: BlockId) -> bool {
        self.entries.contains_key(&block)
    }

    /// Touch `block` (it is being cached somewhere). May evict a victim —
    /// the caller must then invalidate the victim's sharers via the
    /// directory.
    // Eviction only runs at capacity (> 0), so a victim always exists.
    #[allow(clippy::expect_used)]
    pub fn touch(&mut self, block: BlockId) -> FilterOutcome {
        self.clock += 1;
        if let Some(stamp) = self.entries.get_mut(&block) {
            *stamp = self.clock;
            return FilterOutcome::Present;
        }
        if self.entries.len() < self.capacity {
            self.entries.insert(block, self.clock);
            return FilterOutcome::Inserted;
        }
        // Evict the least-recently-touched entry; ties broken by block id
        // for determinism.
        let victim = *self
            .entries
            .iter()
            .min_by_key(|(b, stamp)| (**stamp, b.0))
            .map(|(b, _)| b)
            // lmp-lint: allow(no-panic) — the eviction path only runs at
            // capacity, so the entry map is structurally non-empty.
            .expect("filter non-empty at capacity");
        self.entries.remove(&victim);
        self.entries.insert(block, self.clock);
        self.back_invalidations += 1;
        FilterOutcome::Evicted(victim)
    }

    /// Remove a block (freed, or its last copy invalidated).
    pub fn remove(&mut self, block: BlockId) {
        self.entries.remove(&block);
    }

    /// Total evictions (each one is a back-invalidation event).
    pub fn back_invalidation_count(&self) -> u64 {
        self.back_invalidations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_evicts_lru() {
        let mut f = SnoopFilter::new(2);
        assert_eq!(f.touch(BlockId(1)), FilterOutcome::Inserted);
        assert_eq!(f.touch(BlockId(2)), FilterOutcome::Inserted);
        // Refresh 1, so 2 is LRU.
        assert_eq!(f.touch(BlockId(1)), FilterOutcome::Present);
        assert_eq!(f.touch(BlockId(3)), FilterOutcome::Evicted(BlockId(2)));
        assert!(f.contains(BlockId(1)));
        assert!(f.contains(BlockId(3)));
        assert!(!f.contains(BlockId(2)));
        assert_eq!(f.back_invalidation_count(), 1);
    }

    #[test]
    fn within_capacity_never_evicts() {
        let mut f = SnoopFilter::new(100);
        for i in 0..100 {
            assert_ne!(
                std::mem::discriminant(&f.touch(BlockId(i))),
                std::mem::discriminant(&FilterOutcome::Evicted(BlockId(0)))
            );
        }
        assert_eq!(f.back_invalidation_count(), 0);
        assert_eq!(f.len(), 100);
    }

    #[test]
    fn thrashing_working_set_causes_storms() {
        let mut f = SnoopFilter::new(4);
        // Cycle through 8 blocks repeatedly: every touch evicts.
        for round in 0..10 {
            for i in 0..8u64 {
                f.touch(BlockId(i));
                let _ = round;
            }
        }
        // First 4 touches fill; everything after evicts.
        assert_eq!(f.back_invalidation_count(), 80 - 4);
    }

    #[test]
    fn remove_frees_space() {
        let mut f = SnoopFilter::new(1);
        f.touch(BlockId(1));
        f.remove(BlockId(1));
        assert_eq!(f.touch(BlockId(2)), FilterOutcome::Inserted);
        assert_eq!(f.back_invalidation_count(), 0);
    }
}
