//! Coherence configuration and shared types.
//!
//! The paper's §3.2/§5 position: LMPs provide only a **few GBs** of cache
//! coherent shared memory (enough for coordination), track sharing at a
//! granularity **finer than a cache line** to avoid false sharing, and keep
//! the inclusive snoop filter small enough to be practical — overflow
//! triggers CXL-style back-invalidation.

use lmp_sim::time::SimDuration;

/// Identifies a server participating in the coherent region.
pub type NodeId = u32;

/// Index of a coherence block (coherent address / granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

/// Where the coherence engine is placed — §5 discusses interposition cost
/// and proposes fabric-switch placement to keep local accesses fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnginePlacement {
    /// Engine in the fabric switch: every coherent access pays one fabric
    /// round-trip, but local accesses are not otherwise slowed.
    Switch,
    /// Engine interposed on each node's memory path: coherent hits are
    /// cheaper, but the engine slows *all* accesses to coherent memory.
    PerNode,
}

/// Tunable parameters of the coherent region.
#[derive(Debug, Clone, PartialEq)]
pub struct CoherenceConfig {
    /// Sharing-tracking granularity in bytes. 64 matches a cache line;
    /// smaller values (8, 16, 32) avoid false sharing at the cost of more
    /// directory entries (§3.2).
    pub granularity: u64,
    /// Capacity of the inclusive snoop filter, in blocks. Evictions
    /// back-invalidate every sharer of the victim block.
    pub filter_capacity: usize,
    /// Cost the engine adds to every coherent access (interposition).
    pub interpose: SimDuration,
    /// Cost of one coherence message between nodes (invalidate, fetch, …).
    pub message_latency: SimDuration,
    /// Engine placement.
    pub placement: EnginePlacement,
}

impl CoherenceConfig {
    /// Defaults matching the paper's sketch: 16-byte granularity (finer
    /// than a line), a 64Ki-entry filter, switch placement, and message
    /// costs on the order of an unloaded Link1 hop.
    pub fn default_lmp() -> Self {
        CoherenceConfig {
            granularity: 16,
            filter_capacity: 64 * 1024,
            interpose: SimDuration::from_nanos(30),
            message_latency: SimDuration::from_nanos(261),
            placement: EnginePlacement::Switch,
        }
    }

    /// A classic 64-byte cache-line configuration (the false-sharing
    /// ablation baseline).
    pub fn cache_line() -> Self {
        CoherenceConfig {
            granularity: 64,
            ..Self::default_lmp()
        }
    }

    /// Block containing coherent-address `addr`.
    pub fn block_of(&self, addr: u64) -> BlockId {
        BlockId(addr / self.granularity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping_respects_granularity() {
        let c = CoherenceConfig::default_lmp();
        assert_eq!(c.granularity, 16);
        assert_eq!(c.block_of(0), BlockId(0));
        assert_eq!(c.block_of(15), BlockId(0));
        assert_eq!(c.block_of(16), BlockId(1));
        let line = CoherenceConfig::cache_line();
        assert_eq!(line.block_of(63), BlockId(0));
        assert_eq!(line.block_of(64), BlockId(1));
    }
}
