//! Directory-based MSI protocol.
//!
//! One directory entry per coherence block records the global state:
//! `Invalid` (no cached copies), `Shared` (read-only copies at a set of
//! nodes), or `Modified` (one node owns a dirty copy). Transitions emit
//! [`CohMessage`]s — the inter-node traffic a hardware implementation would
//! put on the fabric — which callers (the coherent region, the benches)
//! count and price.

use crate::config::{BlockId, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// Global sharing state of one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirState {
    /// No cached copies; memory is the only copy.
    Invalid,
    /// Read-only copies at these nodes.
    Shared(BTreeSet<NodeId>),
    /// One dirty copy at this node.
    Modified(NodeId),
}

/// A coherence protocol message (for counting and pricing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CohMessage {
    /// Ask the current owner to write back and downgrade to Shared.
    DowngradeOwner {
        /// Current owner holding the dirty copy.
        owner: NodeId,
    },
    /// Ask the current owner to write back and invalidate.
    FlushOwner {
        /// Current owner holding the dirty copy.
        owner: NodeId,
    },
    /// Invalidate read-only copies.
    Invalidate {
        /// Nodes whose copies must be dropped.
        sharers: Vec<NodeId>,
    },
    /// Supply clean data from the home memory.
    FetchFromMemory,
}

/// Result of one directory access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirAccess {
    /// Messages required to satisfy the access.
    pub messages: Vec<CohMessage>,
    /// Whether the requester already had a valid copy (no protocol action).
    pub hit: bool,
}

/// The MSI directory.
#[derive(Debug, Default)]
pub struct Directory {
    entries: BTreeMap<BlockId, DirState>,
    reads: u64,
    writes: u64,
    invalidations: u64,
    downgrades: u64,
}

impl Directory {
    /// An empty directory (all blocks Invalid).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current state of a block.
    pub fn state(&self, block: BlockId) -> DirState {
        self.entries
            .get(&block)
            .cloned()
            .unwrap_or(DirState::Invalid)
    }

    /// Number of blocks with a non-Invalid entry.
    pub fn tracked_blocks(&self) -> usize {
        self.entries.len()
    }

    /// Handle a read (load) of `block` by `node`.
    pub fn read(&mut self, block: BlockId, node: NodeId) -> DirAccess {
        self.reads += 1;
        let state = self.state(block);
        match state {
            DirState::Invalid => {
                self.entries
                    .insert(block, DirState::Shared(BTreeSet::from([node])));
                DirAccess {
                    messages: vec![CohMessage::FetchFromMemory],
                    hit: false,
                }
            }
            DirState::Shared(mut sharers) => {
                let hit = sharers.contains(&node);
                sharers.insert(node);
                self.entries.insert(block, DirState::Shared(sharers));
                DirAccess {
                    messages: if hit {
                        vec![]
                    } else {
                        vec![CohMessage::FetchFromMemory]
                    },
                    hit,
                }
            }
            DirState::Modified(owner) => {
                if owner == node {
                    return DirAccess {
                        messages: vec![],
                        hit: true,
                    };
                }
                self.downgrades += 1;
                self.entries
                    .insert(block, DirState::Shared(BTreeSet::from([owner, node])));
                DirAccess {
                    messages: vec![CohMessage::DowngradeOwner { owner }],
                    hit: false,
                }
            }
        }
    }

    /// Handle a write (store / RMW) of `block` by `node`.
    pub fn write(&mut self, block: BlockId, node: NodeId) -> DirAccess {
        self.writes += 1;
        let state = self.state(block);
        match state {
            DirState::Invalid => {
                self.entries.insert(block, DirState::Modified(node));
                DirAccess {
                    messages: vec![CohMessage::FetchFromMemory],
                    hit: false,
                }
            }
            DirState::Shared(sharers) => {
                let others: Vec<NodeId> = sharers.iter().copied().filter(|&s| s != node).collect();
                let had_copy = sharers.contains(&node);
                self.entries.insert(block, DirState::Modified(node));
                let mut messages = Vec::new();
                if !others.is_empty() {
                    self.invalidations += others.len() as u64;
                    messages.push(CohMessage::Invalidate { sharers: others });
                }
                if !had_copy {
                    messages.push(CohMessage::FetchFromMemory);
                }
                let hit = had_copy && messages.is_empty();
                DirAccess { messages, hit }
            }
            DirState::Modified(owner) => {
                if owner == node {
                    return DirAccess {
                        messages: vec![],
                        hit: true,
                    };
                }
                self.entries.insert(block, DirState::Modified(node));
                DirAccess {
                    messages: vec![CohMessage::FlushOwner { owner }],
                    hit: false,
                }
            }
        }
    }

    /// Drop a block entirely (back-invalidation landed or memory freed).
    /// Returns the nodes that held copies and must be invalidated.
    pub fn evict(&mut self, block: BlockId) -> Vec<NodeId> {
        match self.entries.remove(&block) {
            None | Some(DirState::Invalid) => vec![],
            Some(DirState::Shared(sharers)) => sharers.into_iter().collect(),
            Some(DirState::Modified(owner)) => vec![owner],
        }
    }

    /// A node crashed: purge it from every entry. Returns blocks whose only
    /// copy was dirty at the crashed node (their latest data is lost unless
    /// protected by replication — the §5 failure-domain hazard).
    pub fn purge_node(&mut self, node: NodeId) -> Vec<BlockId> {
        let mut lost = Vec::new();
        let mut remove = Vec::new();
        for (block, state) in self.entries.iter_mut() {
            match state {
                DirState::Invalid => {}
                DirState::Shared(sharers) => {
                    sharers.remove(&node);
                    if sharers.is_empty() {
                        remove.push(*block);
                    }
                }
                DirState::Modified(owner) => {
                    if *owner == node {
                        lost.push(*block);
                        remove.push(*block);
                    }
                }
            }
        }
        for b in remove {
            self.entries.remove(&b);
        }
        lost.sort_unstable();
        lost
    }

    /// Total reads processed.
    pub fn read_count(&self) -> u64 {
        self.reads
    }
    /// Total writes processed.
    pub fn write_count(&self) -> u64 {
        self.writes
    }
    /// Total sharer-invalidation messages sent.
    pub fn invalidation_count(&self) -> u64 {
        self.invalidations
    }
    /// Total owner-downgrade messages sent.
    pub fn downgrade_count(&self) -> u64 {
        self.downgrades
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: BlockId = BlockId(7);

    #[test]
    fn cold_read_fetches_from_memory() {
        let mut d = Directory::new();
        let a = d.read(B, 0);
        assert!(!a.hit);
        assert_eq!(a.messages, vec![CohMessage::FetchFromMemory]);
        assert_eq!(d.state(B), DirState::Shared(BTreeSet::from([0])));
    }

    #[test]
    fn repeated_read_is_hit() {
        let mut d = Directory::new();
        d.read(B, 0);
        let a = d.read(B, 0);
        assert!(a.hit);
        assert!(a.messages.is_empty());
    }

    #[test]
    fn multiple_readers_share() {
        let mut d = Directory::new();
        d.read(B, 0);
        d.read(B, 1);
        d.read(B, 2);
        assert_eq!(d.state(B), DirState::Shared(BTreeSet::from([0, 1, 2])));
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new();
        d.read(B, 0);
        d.read(B, 1);
        d.read(B, 2);
        let a = d.write(B, 0);
        assert_eq!(
            a.messages,
            vec![CohMessage::Invalidate { sharers: vec![1, 2] }]
        );
        assert_eq!(d.state(B), DirState::Modified(0));
        assert_eq!(d.invalidation_count(), 2);
    }

    #[test]
    fn owner_rewrites_are_free() {
        let mut d = Directory::new();
        d.write(B, 3);
        let a = d.write(B, 3);
        assert!(a.hit);
        assert!(a.messages.is_empty());
    }

    #[test]
    fn read_of_modified_downgrades_owner() {
        let mut d = Directory::new();
        d.write(B, 1);
        let a = d.read(B, 2);
        assert_eq!(a.messages, vec![CohMessage::DowngradeOwner { owner: 1 }]);
        assert_eq!(d.state(B), DirState::Shared(BTreeSet::from([1, 2])));
        assert_eq!(d.downgrade_count(), 1);
    }

    #[test]
    fn write_of_modified_flushes_previous_owner() {
        let mut d = Directory::new();
        d.write(B, 1);
        let a = d.write(B, 2);
        assert_eq!(a.messages, vec![CohMessage::FlushOwner { owner: 1 }]);
        assert_eq!(d.state(B), DirState::Modified(2));
    }

    #[test]
    fn evict_returns_copy_holders() {
        let mut d = Directory::new();
        d.read(B, 0);
        d.read(B, 1);
        assert_eq!(d.evict(B), vec![0, 1]);
        assert_eq!(d.state(B), DirState::Invalid);
        assert_eq!(d.evict(B), Vec::<NodeId>::new());
    }

    #[test]
    fn purge_node_reports_lost_dirty_blocks() {
        let mut d = Directory::new();
        d.write(BlockId(1), 5); // dirty at 5 → lost
        d.read(BlockId(2), 5); // shared only at 5 → entry removed, not lost
        d.read(BlockId(2), 6);
        d.write(BlockId(3), 7); // unaffected
        let lost = d.purge_node(5);
        assert_eq!(lost, vec![BlockId(1)]);
        assert_eq!(d.state(BlockId(2)), DirState::Shared(BTreeSet::from([6])));
        assert_eq!(d.state(BlockId(3)), DirState::Modified(7));
    }

    #[test]
    fn upgrade_with_no_other_sharers_is_quiet() {
        let mut d = Directory::new();
        d.read(B, 4);
        let a = d.write(B, 4);
        assert!(a.messages.is_empty());
        assert!(a.hit);
        assert_eq!(d.state(B), DirState::Modified(4));
    }
}
