// Tests may unwrap/expect freely; production code must not (see crates/lint).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # lmp-coherence — the coherent region and its protocol machinery
//!
//! The paper's position (§3.2, §5): LMPs should **not** make all shared
//! memory cache coherent — that is the scalability trap hardware DSM fell
//! into — but they need a few GBs of coherent memory for coordination.
//! This crate implements that slice:
//!
//! * [`directory::Directory`] — MSI state machine with per-block entries.
//! * [`filter::SnoopFilter`] — bounded inclusive filter; overflow triggers
//!   CXL-style back-invalidation.
//! * [`region::CoherentRegion`] — word-addressable coherent memory with
//!   per-operation cost accounting (latency + protocol messages).
//! * [`sync`] — coordination primitives built on the region (spin, ticket,
//!   cohort/NUMA-aware locks, barrier, seqlock), comparable by traffic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod directory;
pub mod filter;
pub mod region;
pub mod rwlock;
pub mod sync;

pub use config::{BlockId, CoherenceConfig, EnginePlacement, NodeId};
pub use directory::{CohMessage, DirAccess, DirState, Directory};
pub use filter::{FilterOutcome, SnoopFilter};
pub use region::{CoherenceCost, CoherentRegion, OutOfRegion};
pub use rwlock::{CentralRwLock, NumaRwLock};
pub use sync::{Barrier, CohortLock, SeqLock, SpinLock, TicketLock};
