//! Synchronization primitives on coherent memory.
//!
//! §5 proposes that applications use "scalable coordination mechanisms to
//! reduce coherence traffic on coherent memory, such as NUMA-aware
//! coordination". This module provides the ladder the paper cites: a plain
//! spinlock, a ticket lock, a NUMA/cohort lock that prefers same-server
//! handoffs, a sense-reversing barrier, and a seqlock. Each returns the
//! [`CoherenceCost`] of its region traffic so the benches can compare
//! designs by messages, not vibes.

use crate::config::NodeId;
use crate::region::{CoherenceCost, CoherentRegion, OutOfRegion};
use std::collections::VecDeque;

/// A test-and-set spinlock on one coherent word (0 = free, otherwise
/// holder's node id + 1).
#[derive(Debug, Clone, Copy)]
pub struct SpinLock {
    addr: u64,
}

impl SpinLock {
    /// A lock at coherent address `addr`.
    pub fn new(addr: u64) -> Self {
        SpinLock { addr }
    }

    /// One acquisition attempt (a CAS). Returns whether the lock was taken.
    pub fn try_acquire(
        &self,
        region: &mut CoherentRegion,
        node: NodeId,
    ) -> Result<(bool, CoherenceCost), OutOfRegion> {
        region.cas(node, self.addr, 0, node as u64 + 1)
    }

    /// Release the lock.
    ///
    /// # Panics
    /// Panics when `node` does not hold the lock — releasing someone else's
    /// lock is always a caller bug.
    pub fn release(
        &self,
        region: &mut CoherentRegion,
        node: NodeId,
    ) -> Result<CoherenceCost, OutOfRegion> {
        let (holder, mut cost) = region.load(node, self.addr)?;
        // lmp-lint: allow(no-panic) — release by a non-holder is a lock-
        // protocol violation in the workload itself; masking it as Err would
        // let a corrupt schedule keep running.
        assert_eq!(holder, node as u64 + 1, "release by non-holder {node}");
        cost.absorb(region.store(node, self.addr, 0)?);
        Ok(cost)
    }

    /// Current holder, if any.
    pub fn holder(&self, region: &mut CoherentRegion, node: NodeId) -> Option<NodeId> {
        let (v, _) = region.load(node, self.addr).ok()?;
        if v == 0 {
            None
        } else {
            Some((v - 1) as NodeId)
        }
    }
}

/// A FIFO ticket lock: two coherent words (next-ticket, now-serving).
#[derive(Debug, Clone, Copy)]
pub struct TicketLock {
    next_addr: u64,
    serving_addr: u64,
}

impl TicketLock {
    /// Place the two words at `base` and `base + stride` (use the region
    /// granularity as stride to keep them in different blocks).
    pub fn new(base: u64, stride: u64) -> Self {
        TicketLock {
            next_addr: base,
            serving_addr: base + stride,
        }
    }

    /// Draw a ticket.
    pub fn take_ticket(
        &self,
        region: &mut CoherentRegion,
        node: NodeId,
    ) -> Result<(u64, CoherenceCost), OutOfRegion> {
        region.fetch_add(node, self.next_addr, 1)
    }

    /// Check whether `ticket` is being served (one spin iteration).
    pub fn poll(
        &self,
        region: &mut CoherentRegion,
        node: NodeId,
        ticket: u64,
    ) -> Result<(bool, CoherenceCost), OutOfRegion> {
        let (serving, cost) = region.load(node, self.serving_addr)?;
        Ok((serving == ticket, cost))
    }

    /// Pass the lock to the next ticket.
    pub fn release(
        &self,
        region: &mut CoherentRegion,
        node: NodeId,
    ) -> Result<CoherenceCost, OutOfRegion> {
        let (_, cost) = region.fetch_add(node, self.serving_addr, 1)?;
        Ok(cost)
    }
}

/// A cohort (NUMA-aware) lock: a global word plus one local word per node.
/// On release, the lock prefers a waiter from the holder's own server (up
/// to `cohort_cap` consecutive local handoffs), which keeps the hot word's
/// coherence traffic on-node — the Lock-Cohorting design the paper cites.
#[derive(Debug)]
pub struct CohortLock {
    global_addr: u64,
    local_addrs: Vec<u64>,
    cohort_cap: u32,
    /// FIFO of waiting (node, thread) pairs.
    queue: VecDeque<(NodeId, u32)>,
    holder: Option<(NodeId, u32)>,
    local_streak: u32,
    local_handoffs: u64,
    global_handoffs: u64,
}

impl CohortLock {
    /// Build for `nodes` servers; words placed from `base`, one granule
    /// apart.
    pub fn new(base: u64, stride: u64, nodes: u32, cohort_cap: u32) -> Self {
        CohortLock {
            global_addr: base,
            local_addrs: (0..nodes).map(|n| base + stride * (n as u64 + 1)).collect(),
            cohort_cap,
            queue: VecDeque::new(),
            holder: None,
            local_streak: 0,
            local_handoffs: 0,
            global_handoffs: 0,
        }
    }

    /// Request the lock; grants immediately when free, otherwise queues.
    /// Returns whether the caller now holds the lock.
    pub fn acquire(
        &mut self,
        region: &mut CoherentRegion,
        node: NodeId,
        thread: u32,
    ) -> Result<(bool, CoherenceCost), OutOfRegion> {
        // Joining the queue announces intent on the local word.
        let mut cost = region.fetch_add(node, self.local_addrs[node as usize], 1)?.1;
        if self.holder.is_none() {
            // Take the global word.
            cost.absorb(region.store(node, self.global_addr, node as u64 + 1)?);
            self.holder = Some((node, thread));
            self.local_streak = 0;
            Ok((true, cost))
        } else {
            self.queue.push_back((node, thread));
            Ok((false, cost))
        }
    }

    /// Release; hands off to the preferred next waiter. Returns the new
    /// holder, if any.
    ///
    /// # Panics
    /// Panics when the releaser does not hold the lock.
    pub fn release(
        &mut self,
        region: &mut CoherentRegion,
        node: NodeId,
        thread: u32,
    ) -> Result<(Option<(NodeId, u32)>, CoherenceCost), OutOfRegion> {
        // lmp-lint: allow(no-panic) — release by a non-holder is a lock-
        // protocol violation in the workload itself; it must fail loudly
        // rather than propagate.
        assert_eq!(self.holder, Some((node, thread)), "release by non-holder");
        let mut cost = CoherenceCost::default();
        // Prefer a same-node waiter while under the cohort cap.
        let pick = if self.local_streak < self.cohort_cap {
            self.queue.iter().position(|(n, _)| *n == node)
        } else {
            None
        };
        let next = match pick {
            Some(idx) => {
                self.local_streak += 1;
                self.local_handoffs += 1;
                // Local handoff: the local word stays owned by this node —
                // cheap (a store that hits in the owner's cache).
                cost.absorb(region.store(node, self.local_addrs[node as usize], 0)?);
                self.queue.remove(idx)
            }
            None => {
                self.local_streak = 0;
                let next = self.queue.pop_front();
                if let Some((n, _)) = next {
                    self.global_handoffs += 1;
                    // Global handoff: the new node takes the global word —
                    // a remote transfer.
                    cost.absorb(region.store(n, self.global_addr, n as u64 + 1)?);
                } else {
                    cost.absorb(region.store(node, self.global_addr, 0)?);
                }
                next
            }
        };
        self.holder = next;
        Ok((next, cost))
    }

    /// Current holder.
    pub fn holder(&self) -> Option<(NodeId, u32)> {
        self.holder
    }

    /// Same-node handoffs so far.
    pub fn local_handoffs(&self) -> u64 {
        self.local_handoffs
    }

    /// Cross-node handoffs so far.
    pub fn global_handoffs(&self) -> u64 {
        self.global_handoffs
    }
}

/// A sense-reversing barrier on a single coherent word.
#[derive(Debug, Clone, Copy)]
pub struct Barrier {
    count_addr: u64,
    sense_addr: u64,
    parties: u64,
}

impl Barrier {
    /// A barrier for `parties` arrivals; words at `base` and `base+stride`.
    ///
    /// # Panics
    /// Panics for zero parties.
    pub fn new(base: u64, stride: u64, parties: u64) -> Self {
        // lmp-lint: allow(no-panic) — documented `# Panics` ctor precondition;
        // zero parties is an experiment-setup bug.
        assert!(parties > 0, "barrier needs at least one party");
        Barrier {
            count_addr: base,
            sense_addr: base + stride,
            parties,
        }
    }

    /// Arrive at the barrier. Returns `true` for the last arrival (which
    /// flips the sense, releasing everyone).
    pub fn arrive(
        &self,
        region: &mut CoherentRegion,
        node: NodeId,
    ) -> Result<(bool, CoherenceCost), OutOfRegion> {
        let (prev, mut cost) = region.fetch_add(node, self.count_addr, 1)?;
        let arrivals = prev + 1;
        if arrivals % self.parties == 0 {
            // Last arrival: flip sense.
            let (sense, c2) = region.load(node, self.sense_addr)?;
            cost.absorb(c2);
            cost.absorb(region.store(node, self.sense_addr, sense ^ 1)?);
            Ok((true, cost))
        } else {
            Ok((false, cost))
        }
    }

    /// One poll of the sense word: has the generation `sense` completed?
    pub fn poll(
        &self,
        region: &mut CoherentRegion,
        node: NodeId,
        sense: u64,
    ) -> Result<(bool, CoherenceCost), OutOfRegion> {
        let (cur, cost) = region.load(node, self.sense_addr)?;
        Ok((cur != sense, cost))
    }
}

/// A seqlock: one sequence word; writers make it odd during updates,
/// readers retry on odd or changed sequences.
#[derive(Debug, Clone, Copy)]
pub struct SeqLock {
    seq_addr: u64,
}

impl SeqLock {
    /// A seqlock with its sequence word at `addr`.
    pub fn new(addr: u64) -> Self {
        SeqLock { seq_addr: addr }
    }

    /// Begin a write: sequence becomes odd.
    ///
    /// # Panics
    /// Panics on nested write begin (sequence already odd).
    pub fn write_begin(
        &self,
        region: &mut CoherentRegion,
        node: NodeId,
    ) -> Result<CoherenceCost, OutOfRegion> {
        let (seq, mut cost) = region.load(node, self.seq_addr)?;
        // lmp-lint: allow(no-panic) — a nested seqlock write is a protocol
        // violation in the calling workload; continuing would corrupt the
        // sequence word.
        assert_eq!(seq % 2, 0, "nested seqlock write");
        cost.absorb(region.store(node, self.seq_addr, seq + 1)?);
        Ok(cost)
    }

    /// End a write: sequence becomes even again.
    pub fn write_end(
        &self,
        region: &mut CoherentRegion,
        node: NodeId,
    ) -> Result<CoherenceCost, OutOfRegion> {
        let (seq, mut cost) = region.load(node, self.seq_addr)?;
        // lmp-lint: allow(no-panic) — write_end without a matching write_begin
        // is a protocol violation; the sequence word is already inconsistent.
        assert_eq!(seq % 2, 1, "write_end without write_begin");
        cost.absorb(region.store(node, self.seq_addr, seq + 1)?);
        Ok(cost)
    }

    /// Begin a read: returns the observed sequence (`None` while a write is
    /// in progress and the read must retry).
    pub fn read_begin(
        &self,
        region: &mut CoherentRegion,
        node: NodeId,
    ) -> Result<(Option<u64>, CoherenceCost), OutOfRegion> {
        let (seq, cost) = region.load(node, self.seq_addr)?;
        Ok((if seq % 2 == 0 { Some(seq) } else { None }, cost))
    }

    /// Validate a read begun at `seq`: `true` when no write intervened.
    pub fn read_validate(
        &self,
        region: &mut CoherentRegion,
        node: NodeId,
        seq: u64,
    ) -> Result<(bool, CoherenceCost), OutOfRegion> {
        let (cur, cost) = region.load(node, self.seq_addr)?;
        Ok((cur == seq, cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoherenceConfig;
    use lmp_sim::units::MIB;

    fn region() -> CoherentRegion {
        CoherentRegion::new(CoherenceConfig::default_lmp(), MIB)
    }

    #[test]
    fn spinlock_mutual_exclusion() {
        let mut r = region();
        let lock = SpinLock::new(0);
        let (ok, _) = lock.try_acquire(&mut r, 0).unwrap();
        assert!(ok);
        let (ok, _) = lock.try_acquire(&mut r, 1).unwrap();
        assert!(!ok, "second acquirer must fail");
        assert_eq!(lock.holder(&mut r, 2), Some(0));
        lock.release(&mut r, 0).unwrap();
        let (ok, _) = lock.try_acquire(&mut r, 1).unwrap();
        assert!(ok);
    }

    #[test]
    #[should_panic(expected = "release by non-holder")]
    fn spinlock_release_by_non_holder_panics() {
        let mut r = region();
        let lock = SpinLock::new(0);
        lock.try_acquire(&mut r, 0).unwrap();
        let _ = lock.release(&mut r, 1);
    }

    #[test]
    fn ticket_lock_is_fifo() {
        let mut r = region();
        let lock = TicketLock::new(0, 16);
        let (t0, _) = lock.take_ticket(&mut r, 0).unwrap();
        let (t1, _) = lock.take_ticket(&mut r, 1).unwrap();
        let (t2, _) = lock.take_ticket(&mut r, 2).unwrap();
        assert_eq!((t0, t1, t2), (0, 1, 2));
        assert!(lock.poll(&mut r, 0, t0).unwrap().0);
        assert!(!lock.poll(&mut r, 1, t1).unwrap().0);
        lock.release(&mut r, 0).unwrap();
        assert!(lock.poll(&mut r, 1, t1).unwrap().0);
        lock.release(&mut r, 1).unwrap();
        assert!(lock.poll(&mut r, 2, t2).unwrap().0);
    }

    #[test]
    fn cohort_lock_prefers_local_handoffs() {
        let mut r = region();
        let mut lock = CohortLock::new(0, 16, 2, 8);
        // Node 0 thread 0 holds; waiters: (1,0), (0,1), (0,2).
        assert!(lock.acquire(&mut r, 0, 0).unwrap().0);
        assert!(!lock.acquire(&mut r, 1, 0).unwrap().0);
        assert!(!lock.acquire(&mut r, 0, 1).unwrap().0);
        assert!(!lock.acquire(&mut r, 0, 2).unwrap().0);
        // Release prefers same-node waiters.
        let (next, _) = lock.release(&mut r, 0, 0).unwrap();
        assert_eq!(next, Some((0, 1)));
        let (next, _) = lock.release(&mut r, 0, 1).unwrap();
        assert_eq!(next, Some((0, 2)));
        let (next, _) = lock.release(&mut r, 0, 2).unwrap();
        assert_eq!(next, Some((1, 0)), "finally crosses nodes");
        assert_eq!(lock.local_handoffs(), 2);
        assert_eq!(lock.global_handoffs(), 1);
    }

    #[test]
    fn cohort_cap_bounds_starvation() {
        let mut r = region();
        let mut lock = CohortLock::new(0, 16, 2, 1);
        assert!(lock.acquire(&mut r, 0, 0).unwrap().0);
        assert!(!lock.acquire(&mut r, 1, 0).unwrap().0);
        assert!(!lock.acquire(&mut r, 0, 1).unwrap().0);
        // Cap 1: one local handoff allowed, then the cross-node waiter wins.
        let (next, _) = lock.release(&mut r, 0, 0).unwrap();
        assert_eq!(next, Some((0, 1)));
        let (next, _) = lock.release(&mut r, 0, 1).unwrap();
        assert_eq!(next, Some((1, 0)), "cap forces fairness");
    }

    #[test]
    fn cohort_beats_ticket_on_messages_under_clustered_contention() {
        // 2 nodes × 4 threads all contending; compare cross-node traffic.
        let mut r_ticket = region();
        let mut r_cohort = region();
        let ticket = TicketLock::new(0, 16);
        let mut cohort = CohortLock::new(1024, 16, 2, 4);

        // Ticket: threads acquire in FIFO order; node alternates, so the
        // serving word ping-pongs between nodes.
        let mut ticket_msgs = 0;
        let order = [(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2), (0, 3), (1, 3)];
        let mut tickets = Vec::new();
        for &(n, _) in &order {
            let (t, c) = ticket.take_ticket(&mut r_ticket, n).unwrap();
            ticket_msgs += c.messages;
            tickets.push((n, t));
        }
        for &(n, _) in &order {
            ticket_msgs += ticket.release(&mut r_ticket, n).unwrap().messages;
        }

        let mut cohort_msgs = 0;
        for &(n, t) in &order {
            cohort_msgs += cohort.acquire(&mut r_cohort, n, t).unwrap().1.messages;
        }
        let mut cur = cohort.holder();
        while let Some((n, t)) = cur {
            let (next, c) = cohort.release(&mut r_cohort, n, t).unwrap();
            cohort_msgs += c.messages;
            cur = next;
        }
        assert!(
            cohort.local_handoffs() > cohort.global_handoffs(),
            "cohort lock should mostly hand off locally"
        );
        assert!(
            cohort_msgs < ticket_msgs,
            "cohort {cohort_msgs} vs ticket {ticket_msgs}"
        );
    }

    #[test]
    fn barrier_releases_on_last_arrival() {
        let mut r = region();
        let b = Barrier::new(0, 16, 3);
        assert!(!b.arrive(&mut r, 0).unwrap().0);
        assert!(!b.arrive(&mut r, 1).unwrap().0);
        assert!(!b.poll(&mut r, 0, 0).unwrap().0);
        assert!(b.arrive(&mut r, 2).unwrap().0, "last arrival releases");
        assert!(b.poll(&mut r, 0, 0).unwrap().0);
    }

    #[test]
    fn seqlock_reader_sees_torn_writes() {
        let mut r = region();
        let s = SeqLock::new(0);
        // Clean read.
        let (seq, _) = s.read_begin(&mut r, 1).unwrap();
        let seq = seq.expect("no writer active");
        assert!(s.read_validate(&mut r, 1, seq).unwrap().0);
        // Read concurrent with a write must fail validation or begin.
        s.write_begin(&mut r, 0).unwrap();
        assert!(s.read_begin(&mut r, 1).unwrap().0.is_none());
        s.write_end(&mut r, 0).unwrap();
        assert!(
            !s.read_validate(&mut r, 1, seq).unwrap().0,
            "stale sequence must fail validation"
        );
    }
}
