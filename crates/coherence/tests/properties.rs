// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Property tests for the coherence machinery.

use lmp_coherence::{CoherenceConfig, CoherentRegion, DirState, SpinLock};
use proptest::prelude::*;
use std::collections::HashMap;

fn small_region(filter_capacity: usize) -> CoherentRegion {
    let mut cfg = CoherenceConfig::default_lmp();
    cfg.filter_capacity = filter_capacity;
    CoherentRegion::new(cfg, 64 * 1024)
}

proptest! {
    /// Sequential consistency of the word store: a load always returns the
    /// most recently stored value, regardless of which nodes performed the
    /// operations and how much protocol traffic they generated.
    #[test]
    fn region_is_sequentially_consistent(
        ops in proptest::collection::vec((0u32..4, 0u64..64, any::<u64>(), any::<bool>()), 1..300),
    ) {
        let mut r = small_region(8); // tiny filter: lots of back-invalidation
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (node, slot, value, is_store) in ops {
            let addr = slot * 8;
            if is_store {
                r.store(node, addr, value).unwrap();
                model.insert(addr, value);
            } else {
                let (got, _) = r.load(node, addr).unwrap();
                prop_assert_eq!(got, model.get(&addr).copied().unwrap_or(0));
            }
        }
    }

    /// The inclusive-filter invariant: the directory never tracks more
    /// blocks than the snoop filter can hold.
    #[test]
    fn directory_bounded_by_filter(
        capacity in 1usize..32,
        ops in proptest::collection::vec((0u32..4, 0u64..256, any::<bool>()), 1..300),
    ) {
        let mut r = small_region(capacity);
        for (node, slot, is_store) in ops {
            let addr = slot * 8;
            if is_store {
                r.store(node, addr, 1).unwrap();
            } else {
                r.load(node, addr).unwrap();
            }
            prop_assert!(
                r.directory().tracked_blocks() <= capacity,
                "directory {} exceeds filter {capacity}",
                r.directory().tracked_blocks()
            );
        }
    }

    /// CAS arbitration: driving a spinlock with arbitrary interleavings of
    /// try_acquire/release never admits two holders.
    #[test]
    fn spinlock_never_double_grants(
        schedule in proptest::collection::vec(0u32..4, 1..200),
    ) {
        let mut r = small_region(1024);
        let lock = SpinLock::new(0);
        let mut holder: Option<u32> = None;
        for node in schedule {
            match holder {
                Some(h) if h == node => {
                    lock.release(&mut r, node).unwrap();
                    holder = None;
                }
                Some(_) => {
                    let (ok, _) = lock.try_acquire(&mut r, node).unwrap();
                    prop_assert!(!ok, "lock granted while held");
                }
                None => {
                    let (ok, _) = lock.try_acquire(&mut r, node).unwrap();
                    prop_assert!(ok, "free lock refused");
                    holder = Some(node);
                }
            }
        }
    }

    /// fetch_add is atomic and exact: N increments from arbitrary nodes sum
    /// precisely.
    #[test]
    fn fetch_add_is_exact(nodes in proptest::collection::vec(0u32..8, 1..200)) {
        let mut r = small_region(64);
        for (i, node) in nodes.iter().enumerate() {
            let (prev, _) = r.fetch_add(*node, 0, 1).unwrap();
            prop_assert_eq!(prev, i as u64);
        }
        let (total, _) = r.load(0, 0).unwrap();
        prop_assert_eq!(total, nodes.len() as u64);
    }

    /// After any operation sequence, every directory entry is well-formed:
    /// Shared sets are non-empty and Modified blocks read back the latest
    /// value written.
    #[test]
    fn directory_states_well_formed(
        ops in proptest::collection::vec((0u32..4, 0u64..32, any::<bool>()), 1..200),
    ) {
        let mut r = small_region(1024);
        let cfg = r.config().clone();
        let mut touched = std::collections::HashSet::new();
        for (node, slot, is_store) in ops {
            let addr = slot * 8;
            touched.insert(cfg.block_of(addr));
            if is_store {
                r.store(node, addr, 7).unwrap();
            } else {
                r.load(node, addr).unwrap();
            }
        }
        for b in touched {
            match r.directory().state(b) {
                DirState::Shared(s) => prop_assert!(!s.is_empty(), "empty sharer set"),
                DirState::Invalid | DirState::Modified(_) => {}
            }
        }
    }
}
