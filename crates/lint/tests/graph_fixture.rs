// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Call-graph analysis over the fixture workspace in
//! `tests/fixtures/graphws/`: a two-crate layout whose only panic sites
//! sit behind cross-file free-fn, inherent-method, and trait-impl edges.
//! The analysis must walk all three edge kinds from the single
//! recoverable seed, report full chains, and leave the unreachable
//! panic and the registry-owning constructor unflagged.

use std::path::Path;

use lmp_lint::{analyze, Analysis};

/// Fixture sources keyed by their workspace-relative label (the path the
/// role classifier and findings see).
fn fixture_workspace() -> Vec<(String, String)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/graphws");
    let rels = [
        "crates/alpha/src/api.rs",
        "crates/alpha/src/util.rs",
        "crates/beta/src/imp.rs",
        "crates/beta/src/metrics.rs",
    ];
    rels.iter()
        .map(|rel| {
            let src = std::fs::read_to_string(root.join(rel)).expect("fixture readable");
            (rel.to_string(), src)
        })
        .collect()
}

fn run() -> Analysis {
    analyze(&fixture_workspace())
}

#[test]
fn seed_inference_finds_exactly_the_workspace_error_surface() {
    let a = run();
    // `entry` returns Result<_, AlphaError> with AlphaError declared in
    // the workspace; `stdlib_result` (Result<_, String>) must not seed.
    assert_eq!(a.seed_labels, vec!["entry (crates/alpha/src/api.rs:7)"]);
}

#[test]
fn panics_behind_all_three_edge_kinds_are_reported() {
    let a = run();
    let got: Vec<(&str, usize, &str)> = a
        .findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.rule.name()))
        .collect();
    assert_eq!(
        got,
        vec![
            ("crates/alpha/src/api.rs", 19, "swallowed-error"),
            ("crates/beta/src/imp.rs", 8, "no-panic"),   // inherent method
            ("crates/beta/src/imp.rs", 18, "no-panic"),  // trait impl
            ("crates/beta/src/imp.rs", 23, "no-panic"),  // free fn
            ("crates/beta/src/metrics.rs", 16, "eager-metric"),
        ]
    );
}

#[test]
fn unreachable_panic_and_registry_owner_stay_quiet() {
    let a = run();
    // `dormant_panic` (imp.rs:27) has no inbound edge from any seed;
    // `Baseline::new` (metrics.rs:27) owns its registry, so its eager
    // registration is the baseline instrument set, not a widening.
    assert!(!a.findings.iter().any(|f| f.line >= 26 && f.file.ends_with("imp.rs")));
    assert!(!a
        .findings
        .iter()
        .any(|f| f.file.ends_with("metrics.rs") && f.line != 16));
}

#[test]
fn chains_walk_seed_to_site_through_every_hop() {
    let a = run();
    let trait_panic = a
        .findings
        .iter()
        .find(|f| f.file.ends_with("imp.rs") && f.line == 18)
        .expect("trait-impl panic reported");
    assert_eq!(
        trait_panic.chain,
        vec![
            "entry (crates/alpha/src/api.rs:7)",
            "helper (crates/alpha/src/util.rs:4)",
            "spin (crates/alpha/src/util.rs:11)",
            "Widget::run (crates/beta/src/imp.rs:17)",
        ]
    );
    let method_panic = a
        .findings
        .iter()
        .find(|f| f.file.ends_with("imp.rs") && f.line == 8)
        .expect("inherent-method panic reported");
    assert_eq!(method_panic.chain.len(), 3, "entry -> helper -> deep_check");
}

#[test]
fn digest_taint_spreads_to_ancestors_and_seed_closure() {
    let a = run();
    // `digest_of` is a sink by name; `publish` is its ancestor; the R3
    // closure (api -> util -> imp) also rides the R2 set. `metrics.rs`
    // never touches a digest and stays off both sets.
    let r2: Vec<&str> = a.r2_files.iter().map(String::as_str).collect();
    assert_eq!(
        r2,
        vec![
            "crates/alpha/src/api.rs",
            "crates/alpha/src/util.rs",
            "crates/beta/src/imp.rs",
        ]
    );
    let r3: Vec<&str> = a.r3_files.iter().map(String::as_str).collect();
    assert_eq!(
        r3,
        vec![
            "crates/alpha/src/api.rs",
            "crates/alpha/src/util.rs",
            "crates/beta/src/imp.rs",
        ]
    );
}
