// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Fixture-based self-test: each `tests/fixtures/*.rs` file carries seeded
//! violations (and tricky negatives); the scanner must report exactly the
//! expected `file:line: rule` set — no more, no less.

use std::path::Path;

use lmp_lint::{classify, scan_source, to_json, workspace_sources, FileClass, Rule};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).expect("fixture readable")
}

/// `(line, rule-name)` pairs, in the scanner's reporting order.
fn found(name: &str, class: FileClass) -> Vec<(usize, &'static str)> {
    scan_source(name, &fixture(name), class)
        .into_iter()
        .map(|f| (f.line, f.rule.name()))
        .collect()
}

#[test]
fn r1_wall_clock_fixture() {
    let f = found("r1_wall_clock.rs", FileClass::default());
    assert_eq!(
        f,
        vec![
            (3, "wall-clock"),
            (6, "wall-clock"),
            (7, "wall-clock"),
            (8, "wall-clock"),
        ]
    );
}

#[test]
fn r2_unordered_fixture() {
    let class = FileClass {
        digest_path: true,
        ..FileClass::default()
    };
    let f = found("r2_unordered.rs", class);
    assert_eq!(
        f,
        vec![
            (14, "unordered-iter"),
            (17, "unordered-iter"),
            (25, "unordered-iter"),
            (31, "unordered-iter"),
        ]
    );
    // Without the digest-path classification the same file is clean.
    assert!(found("r2_unordered.rs", FileClass::default()).is_empty());
}

#[test]
fn r3_no_panic_fixture() {
    let class = FileClass {
        recoverable: true,
        ..FileClass::default()
    };
    let f = found("r3_no_panic.rs", class);
    assert_eq!(
        f,
        vec![
            (4, "no-panic"),
            (5, "no-panic"),
            (6, "no-panic"),
            (7, "no-panic"),
            (9, "no-panic"),
            (11, "no-panic"),
            (20, "bare-allow"),
            (21, "no-panic"),
            (25, "unused-allow"),
            (30, "bare-allow"),
        ]
    );
}

#[test]
fn r4_arith_fixture() {
    let class = FileClass {
        arith_path: true,
        ..FileClass::default()
    };
    let f = found("r4_arith.rs", class);
    assert_eq!(
        f,
        vec![
            (6, "unchecked-arith"),
            (7, "unchecked-arith"),
            (8, "unchecked-arith"),
        ]
    );
}

#[test]
fn clean_fixture_has_no_findings() {
    let class = FileClass {
        digest_path: true,
        recoverable: true,
        arith_path: true,
    };
    assert_eq!(found("clean.rs", class), Vec::new());
}

#[test]
fn findings_render_as_file_line_rule() {
    let class = FileClass {
        recoverable: true,
        ..FileClass::default()
    };
    let f = scan_source("r3_no_panic.rs", &fixture("r3_no_panic.rs"), class);
    let first = f.first().expect("fixture has findings").to_string();
    assert!(
        first.starts_with("r3_no_panic.rs:4: no-panic: "),
        "rendered: {first}"
    );
}

#[test]
fn json_output_is_well_formed_per_finding() {
    let class = FileClass {
        recoverable: true,
        ..FileClass::default()
    };
    let f = scan_source("r3_no_panic.rs", &fixture("r3_no_panic.rs"), class);
    let json = to_json(&f);
    assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    assert!(json.contains("\"file\":\"r3_no_panic.rs\""));
    assert!(json.contains("\"rule\":\"no-panic\""));
    assert!(json.contains("\"line\":4"));
}

#[test]
fn designated_file_lists_classify_real_paths() {
    let pool = classify(Path::new("crates/core/src/pool.rs"));
    assert!(pool.recoverable && pool.digest_path && !pool.arith_path);
    let addr = classify(Path::new("/abs/prefix/crates/core/src/addr.rs"));
    assert!(addr.arith_path && !addr.recoverable);
    let snap = classify(Path::new("crates/telemetry/src/snapshot.rs"));
    assert!(snap.digest_path);
    let kv = classify(Path::new("crates/workloads/src/kv.rs"));
    assert_eq!(kv, FileClass::default());
}

#[test]
fn workspace_walk_skips_fixtures_and_build_output() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = workspace_sources(&root).expect("walk workspace");
    assert!(!files.is_empty());
    for f in &files {
        let p = f.to_string_lossy();
        assert!(!p.contains("fixtures"), "fixture file scanned: {p}");
        assert!(!p.contains("target"), "build output scanned: {p}");
    }
    // The walk reaches all covered top-level trees.
    assert!(files.iter().any(|f| f.ends_with(Path::new("crates/core/src/pool.rs"))));
    assert!(files.iter().any(|f| f.ends_with(Path::new("src/lib.rs"))));
}

#[test]
fn rule_name_round_trip() {
    for r in [
        Rule::WallClock,
        Rule::UnorderedIter,
        Rule::NoPanic,
        Rule::UncheckedArith,
        Rule::BareAllow,
        Rule::UnusedAllow,
    ] {
        assert!(!r.name().is_empty());
    }
}
