// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Fixture-based self-test: each `tests/fixtures/*.rs` file carries seeded
//! violations (and tricky negatives); the scanner must report exactly the
//! expected `file:line: rule` set — no more, no less.

use std::path::Path;

use lmp_lint::{
    analyze_files, check_superset, classify, scan_source, to_json, transition,
    workspace_sources, FileClass, Rule,
};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).expect("fixture readable")
}

/// `(line, rule-name)` pairs, in the scanner's reporting order.
fn found(name: &str, class: FileClass) -> Vec<(usize, &'static str)> {
    scan_source(name, &fixture(name), class)
        .into_iter()
        .map(|f| (f.line, f.rule.name()))
        .collect()
}

#[test]
fn r1_wall_clock_fixture() {
    let f = found("r1_wall_clock.rs", FileClass::default());
    assert_eq!(
        f,
        vec![
            (3, "wall-clock"),
            (6, "wall-clock"),
            (7, "wall-clock"),
            (8, "wall-clock"),
        ]
    );
}

#[test]
fn r2_unordered_fixture() {
    let class = FileClass {
        digest_path: true,
        ..FileClass::default()
    };
    let f = found("r2_unordered.rs", class);
    assert_eq!(
        f,
        vec![
            (14, "unordered-iter"),
            (17, "unordered-iter"),
            (25, "unordered-iter"),
            (31, "unordered-iter"),
        ]
    );
    // Without the digest-path classification the same file is clean.
    assert!(found("r2_unordered.rs", FileClass::default()).is_empty());
}

#[test]
fn r3_no_panic_fixture() {
    let class = FileClass {
        recoverable: true,
        ..FileClass::default()
    };
    let f = found("r3_no_panic.rs", class);
    assert_eq!(
        f,
        vec![
            (4, "no-panic"),
            (5, "no-panic"),
            (6, "no-panic"),
            (7, "no-panic"),
            (9, "no-panic"),
            (11, "no-panic"),
            (20, "bare-allow"),
            (21, "no-panic"),
            (25, "unused-allow"),
            (30, "bare-allow"),
        ]
    );
}

#[test]
fn r4_arith_fixture() {
    let class = FileClass {
        arith_path: true,
        ..FileClass::default()
    };
    let f = found("r4_arith.rs", class);
    assert_eq!(
        f,
        vec![
            (6, "unchecked-arith"),
            (7, "unchecked-arith"),
            (8, "unchecked-arith"),
        ]
    );
}

#[test]
fn clean_fixture_has_no_findings() {
    let class = FileClass {
        digest_path: true,
        recoverable: true,
        arith_path: true,
    };
    assert_eq!(found("clean.rs", class), Vec::new());
}

#[test]
fn findings_render_as_file_line_rule() {
    let class = FileClass {
        recoverable: true,
        ..FileClass::default()
    };
    let f = scan_source("r3_no_panic.rs", &fixture("r3_no_panic.rs"), class);
    let first = f.first().expect("fixture has findings").to_string();
    assert!(
        first.starts_with("r3_no_panic.rs:4: no-panic: "),
        "rendered: {first}"
    );
}

#[test]
fn json_output_is_well_formed_per_finding() {
    let class = FileClass {
        recoverable: true,
        ..FileClass::default()
    };
    let f = scan_source("r3_no_panic.rs", &fixture("r3_no_panic.rs"), class);
    let json = to_json(&f);
    assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    assert!(json.contains("\"file\":\"r3_no_panic.rs\""));
    assert!(json.contains("\"rule\":\"no-panic\""));
    assert!(json.contains("\"line\":4"));
    // File-local findings carry an empty seed chain.
    assert!(json.contains("\"chain\":[]"));
}

#[test]
fn classify_no_longer_hand_designates_r2_r3() {
    // R2/R3 coverage is inferred from the call graph now; `classify`
    // only keeps the R4 arithmetic designation. The old hand lists
    // survive solely as the frozen transition baseline.
    let pool = classify(Path::new("crates/core/src/pool.rs"));
    assert!(!pool.recoverable && !pool.digest_path && !pool.arith_path);
    let addr = classify(Path::new("/abs/prefix/crates/core/src/addr.rs"));
    assert!(addr.arith_path && !addr.recoverable && !addr.digest_path);
    let kv = classify(Path::new("crates/workloads/src/kv.rs"));
    assert_eq!(kv, FileClass::default());
    assert!(transition::LEGACY_R2_FILES.contains(&"crates/core/src/pool.rs"));
    assert!(transition::LEGACY_R3_FILES.contains(&"crates/core/src/pool.rs"));
}

#[test]
fn inferred_coverage_is_a_superset_of_the_frozen_hand_lists() {
    // The transition gate on the real workspace: every file the hand
    // lists designated must be rediscovered by seed/sink inference.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = workspace_sources(&root).expect("walk workspace");
    let analysis = analyze_files(&root, &files).expect("read workspace sources");
    let violations = check_superset(&analysis);
    assert!(
        violations.is_empty(),
        "inferred coverage lost hand-list files:\n{}",
        violations.join("\n")
    );
    // Strictly wider, not merely equal: inference reaches files the
    // hand lists never enrolled.
    assert!(
        analysis.r3_files.len() > transition::LEGACY_R3_FILES.len(),
        "inferred R3 set ({}) should exceed the {}-entry hand list",
        analysis.r3_files.len(),
        transition::LEGACY_R3_FILES.len()
    );
}

#[test]
fn workspace_walk_skips_fixtures_and_build_output() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = workspace_sources(&root).expect("walk workspace");
    assert!(!files.is_empty());
    for f in &files {
        let p = f.to_string_lossy();
        assert!(!p.contains("fixtures"), "fixture file scanned: {p}");
        assert!(!p.contains("target"), "build output scanned: {p}");
    }
    // The walk reaches all covered top-level trees.
    assert!(files.iter().any(|f| f.ends_with(Path::new("crates/core/src/pool.rs"))));
    assert!(files.iter().any(|f| f.ends_with(Path::new("src/lib.rs"))));
}

#[test]
fn event_kernel_files_are_inferred_and_clean() {
    // The calendar-queue kernel feeds every chaos digest and sits under
    // the engine's recoverable surface; inference must rediscover all
    // three files on both the R2 and R3 sets — and the full analysis
    // must report nothing in them.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = workspace_sources(&root).expect("walk workspace");
    let analysis = analyze_files(&root, &files).expect("read workspace sources");
    for rel in [
        "crates/sim/src/calendar.rs",
        "crates/sim/src/engine.rs",
        "crates/sim/src/queue.rs",
    ] {
        assert!(
            analysis.r2_files.contains(rel),
            "{rel} fell off the inferred digest path"
        );
        assert!(
            analysis.r3_files.contains(rel),
            "{rel} fell off the inferred recoverable surface"
        );
        let in_file: Vec<String> = analysis
            .findings
            .iter()
            .filter(|f| f.file == rel)
            .map(|f| f.to_string())
            .collect();
        assert!(in_file.is_empty(), "{rel} has findings: {in_file:?}");
    }
}

#[test]
fn adversarial_scanner_fixture_reports_only_the_seeded_sites() {
    // Raw strings (0, 1, and 2 hashes), the raw identifier `r#fn`,
    // lifetime ticks beside char literals ('"', '\'', '\\', unicode),
    // escaped quotes, trailing-backslash string continuations, nested
    // block comments, and `#[cfg(test)]` regions all hide panic tokens;
    // only the two genuine sites outside them may fire.
    let class = FileClass {
        recoverable: true,
        ..FileClass::default()
    };
    let f = found("scanner_adversarial.rs", class);
    assert_eq!(f, vec![(28, "no-panic"), (35, "no-panic")]);
}

#[test]
fn simbench_wall_clock_allows_are_justified_and_used() {
    // `simbench` is the one place wall-clock reads are legitimate (it
    // measures real events/sec), so each must carry a justified wall-clock
    // suppression comment. A bare, unjustified, or unused allow is itself
    // a finding, so an empty scan proves the audit trail: every
    // suppression present, justified, and actually suppressing something.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let rel = "crates/bench/src/bin/simbench.rs";
    let src = std::fs::read_to_string(root.join(rel)).expect("simbench source readable");
    assert!(
        src.contains("lmp-lint: allow(wall-clock)"),
        "simbench lost its wall-clock allows"
    );
    assert!(
        src.contains("Instant"),
        "allows present but no timer reads — suppressions would be unused"
    );
    let findings = scan_source(rel, &src, classify(Path::new(rel)));
    assert!(
        findings.is_empty(),
        "{rel} has lint findings: {}",
        to_json(&findings)
    );
}

#[test]
fn rule_name_round_trip() {
    for r in [
        Rule::WallClock,
        Rule::UnorderedIter,
        Rule::NoPanic,
        Rule::UncheckedArith,
        Rule::BareAllow,
        Rule::UnusedAllow,
        Rule::SwallowedError,
        Rule::EagerMetric,
    ] {
        assert!(!r.name().is_empty());
    }
}
