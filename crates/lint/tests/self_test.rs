// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Fixture-based self-test: each `tests/fixtures/*.rs` file carries seeded
//! violations (and tricky negatives); the scanner must report exactly the
//! expected `file:line: rule` set — no more, no less.

use std::path::Path;

use lmp_lint::{classify, scan_source, to_json, workspace_sources, FileClass, Rule};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).expect("fixture readable")
}

/// `(line, rule-name)` pairs, in the scanner's reporting order.
fn found(name: &str, class: FileClass) -> Vec<(usize, &'static str)> {
    scan_source(name, &fixture(name), class)
        .into_iter()
        .map(|f| (f.line, f.rule.name()))
        .collect()
}

#[test]
fn r1_wall_clock_fixture() {
    let f = found("r1_wall_clock.rs", FileClass::default());
    assert_eq!(
        f,
        vec![
            (3, "wall-clock"),
            (6, "wall-clock"),
            (7, "wall-clock"),
            (8, "wall-clock"),
        ]
    );
}

#[test]
fn r2_unordered_fixture() {
    let class = FileClass {
        digest_path: true,
        ..FileClass::default()
    };
    let f = found("r2_unordered.rs", class);
    assert_eq!(
        f,
        vec![
            (14, "unordered-iter"),
            (17, "unordered-iter"),
            (25, "unordered-iter"),
            (31, "unordered-iter"),
        ]
    );
    // Without the digest-path classification the same file is clean.
    assert!(found("r2_unordered.rs", FileClass::default()).is_empty());
}

#[test]
fn r3_no_panic_fixture() {
    let class = FileClass {
        recoverable: true,
        ..FileClass::default()
    };
    let f = found("r3_no_panic.rs", class);
    assert_eq!(
        f,
        vec![
            (4, "no-panic"),
            (5, "no-panic"),
            (6, "no-panic"),
            (7, "no-panic"),
            (9, "no-panic"),
            (11, "no-panic"),
            (20, "bare-allow"),
            (21, "no-panic"),
            (25, "unused-allow"),
            (30, "bare-allow"),
        ]
    );
}

#[test]
fn r4_arith_fixture() {
    let class = FileClass {
        arith_path: true,
        ..FileClass::default()
    };
    let f = found("r4_arith.rs", class);
    assert_eq!(
        f,
        vec![
            (6, "unchecked-arith"),
            (7, "unchecked-arith"),
            (8, "unchecked-arith"),
        ]
    );
}

#[test]
fn clean_fixture_has_no_findings() {
    let class = FileClass {
        digest_path: true,
        recoverable: true,
        arith_path: true,
    };
    assert_eq!(found("clean.rs", class), Vec::new());
}

#[test]
fn findings_render_as_file_line_rule() {
    let class = FileClass {
        recoverable: true,
        ..FileClass::default()
    };
    let f = scan_source("r3_no_panic.rs", &fixture("r3_no_panic.rs"), class);
    let first = f.first().expect("fixture has findings").to_string();
    assert!(
        first.starts_with("r3_no_panic.rs:4: no-panic: "),
        "rendered: {first}"
    );
}

#[test]
fn json_output_is_well_formed_per_finding() {
    let class = FileClass {
        recoverable: true,
        ..FileClass::default()
    };
    let f = scan_source("r3_no_panic.rs", &fixture("r3_no_panic.rs"), class);
    let json = to_json(&f);
    assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    assert!(json.contains("\"file\":\"r3_no_panic.rs\""));
    assert!(json.contains("\"rule\":\"no-panic\""));
    assert!(json.contains("\"line\":4"));
}

#[test]
fn designated_file_lists_classify_real_paths() {
    let pool = classify(Path::new("crates/core/src/pool.rs"));
    assert!(pool.recoverable && pool.digest_path && !pool.arith_path);
    let addr = classify(Path::new("/abs/prefix/crates/core/src/addr.rs"));
    assert!(addr.arith_path && !addr.recoverable);
    let snap = classify(Path::new("crates/telemetry/src/snapshot.rs"));
    assert!(snap.digest_path);
    let kv = classify(Path::new("crates/workloads/src/kv.rs"));
    assert_eq!(kv, FileClass::default());
}

#[test]
fn workspace_walk_skips_fixtures_and_build_output() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = workspace_sources(&root).expect("walk workspace");
    assert!(!files.is_empty());
    for f in &files {
        let p = f.to_string_lossy();
        assert!(!p.contains("fixtures"), "fixture file scanned: {p}");
        assert!(!p.contains("target"), "build output scanned: {p}");
    }
    // The walk reaches all covered top-level trees.
    assert!(files.iter().any(|f| f.ends_with(Path::new("crates/core/src/pool.rs"))));
    assert!(files.iter().any(|f| f.ends_with(Path::new("src/lib.rs"))));
}

#[test]
fn event_kernel_files_are_designated_and_clean() {
    // The calendar-queue kernel is on both the digest path (pop order
    // feeds every chaos digest) and the no-panic list (a panic mid-scan
    // would abort every scenario); the engine, which turned its
    // past-scheduling panic into `SchedulePastError`, is no-panic too.
    let calendar = classify(Path::new("crates/sim/src/calendar.rs"));
    assert!(calendar.digest_path && calendar.recoverable && !calendar.arith_path);
    let engine = classify(Path::new("crates/sim/src/engine.rs"));
    assert!(engine.recoverable);
    let queue = classify(Path::new("crates/sim/src/queue.rs"));
    assert!(queue.digest_path);

    // And the real sources must scan clean under those designations.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    for rel in [
        "crates/sim/src/calendar.rs",
        "crates/sim/src/engine.rs",
        "crates/sim/src/queue.rs",
    ] {
        let path = root.join(rel);
        let src = std::fs::read_to_string(&path).expect("kernel source readable");
        let findings = scan_source(rel, &src, classify(Path::new(rel)));
        assert!(
            findings.is_empty(),
            "{rel} has lint findings: {}",
            to_json(&findings)
        );
    }
}

#[test]
fn simbench_wall_clock_allows_are_justified_and_used() {
    // `simbench` is the one place wall-clock reads are legitimate (it
    // measures real events/sec), so each must carry a justified wall-clock
    // suppression comment. A bare, unjustified, or unused allow is itself
    // a finding, so an empty scan proves the audit trail: every
    // suppression present, justified, and actually suppressing something.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let rel = "crates/bench/src/bin/simbench.rs";
    let src = std::fs::read_to_string(root.join(rel)).expect("simbench source readable");
    assert!(
        src.contains("lmp-lint: allow(wall-clock)"),
        "simbench lost its wall-clock allows"
    );
    assert!(
        src.contains("Instant"),
        "allows present but no timer reads — suppressions would be unused"
    );
    let findings = scan_source(rel, &src, classify(Path::new(rel)));
    assert!(
        findings.is_empty(),
        "{rel} has lint findings: {}",
        to_json(&findings)
    );
}

#[test]
fn rule_name_round_trip() {
    for r in [
        Rule::WallClock,
        Rule::UnorderedIter,
        Rule::NoPanic,
        Rule::UncheckedArith,
        Rule::BareAllow,
        Rule::UnusedAllow,
    ] {
        assert!(!r.name().is_empty());
    }
}
