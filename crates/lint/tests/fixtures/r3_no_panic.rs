//! R3 fixture: panic-family calls in a recoverable module.

fn violations(x: Option<u32>, v: &[u32]) -> u32 {
    let a = x.unwrap();
    let b = v.first().expect("nonempty");
    assert!(a > 0);
    assert_eq!(a, *b);
    if a > 100 {
        panic!("too big");
    }
    unreachable!()
}

fn justified(x: Option<u32>) -> u32 {
    // lmp-lint: allow(no-panic) — fixture: a justified allow suppresses.
    x.unwrap()
}

fn bare(x: Option<u32>) -> u32 {
    // lmp-lint: allow(no-panic)
    x.unwrap()
}

fn unused(x: u32) -> u32 {
    // lmp-lint: allow(no-panic) — fixture: this suppresses nothing.
    x
}

fn unknown(x: u32) -> u32 {
    // lmp-lint: allow(no-such-rule) — a justification does not save it.
    x
}

fn trailing(x: Option<u32>) -> u32 {
    x.expect("fixture") // lmp-lint: allow(no-panic) — same-line allow works.
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        assert_eq!(super::bare(Some(1)), 1);
        None::<u32>.unwrap();
    }
}
