//! Adversarial scanner fixture: raw strings, lifetime ticks, char
//! literals, escapes, string continuations, and nested block comments.
//! Panic tokens hidden inside literals and comments must stay quiet;
//! the seeded sites marked `finding` below must all be reported.

pub fn raw_strings() {
    let _plain = r"panic!(inside raw) and .unwrap() too";
    let _hashed = r#"a " quote then .expect("no") inside"#;
    let _nested = r##"closes only at two hashes: "# panic!() "##;
    let r#fn = 1u32;
    let _ = r#fn + 1;
}

pub fn lifetimes<'a, 'b>(x: &'a str, _y: &'b str) -> &'a str {
    let _tick: char = 'a';
    let _quote = '"';
    let _escaped_quote = '\'';
    let _backslash = '\\';
    let _unicode = '\u{10FFFF}';
    x
}

pub fn strings_and_continuations() {
    let _s = "escaped quote \" then panic! still inside";
    let _c = "continuation with a trailing backslash \
        panic!(still inside the string) .unwrap()";
    let _t = "done";
    assert!(!_t.is_empty(), "seeded");
}

/* outer comment with panic!()
   /* nested block */ still commented: .expect("quiet")
*/
pub fn after_comments() {
    todo!()
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_in_tests_stay_quiet() {
        let _odd = "'";
        panic!("test code is exempt");
    }
}
