//! R1 fixture: wall-clock and ambient-randomness sources.

use std::time::SystemTime;

fn violations() -> u128 {
    let t = SystemTime::now();
    let i = std::time::Instant::now();
    let r = rand::thread_rng();
    let _ = (t, i, r);
    0
}

fn negatives() {
    // SystemTime::now() in a comment is fine.
    let s = "SystemTime and thread_rng() in a string are fine";
    let instant_like = Instant { raw: 0 };
    let _ = (s, instant_like);
}

struct Instant {
    raw: u64,
}
