//! R2 fixture: unordered iteration on a digest-feeding path.

use std::collections::{BTreeMap, HashMap, HashSet};

struct Registry {
    series: HashMap<String, u64>,
    names: HashSet<String>,
    ordered: BTreeMap<String, u64>,
}

impl Registry {
    fn digest(&self) -> u64 {
        let mut acc = 0;
        for (_k, v) in &self.series {
            acc ^= *v;
        }
        for name in &self.names {
            acc ^= name.len() as u64;
        }
        acc
    }

    fn chained(&self) -> Vec<u64> {
        self.series
            .values()
            .copied()
            .collect()
    }

    fn prune(&mut self) {
        self.names.retain(|n| !n.is_empty());
    }

    fn fine(&self) -> u64 {
        let mut acc = 0;
        for (_k, v) in self.ordered.iter() {
            acc ^= *v;
        }
        acc ^ self.series.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn in_tests_is_fine(r: &mut Registry) {
        r.series.drain();
    }
}
