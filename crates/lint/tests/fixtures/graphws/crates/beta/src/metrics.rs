//! Eager-metric surface of the fixture workspace.

pub struct MetricRegistry;

impl MetricRegistry {
    pub fn counter(&mut self, _name: &str) -> u64 {
        0
    }
}

pub struct Probe;

impl Probe {
    /// Eager registration in a constructor: flagged.
    pub fn new(reg: &mut MetricRegistry) -> Self {
        reg.counter("probe_ops");
        Probe
    }
}

pub struct Baseline;

impl Baseline {
    /// Owns its registry: establishing the baseline instrument set is
    /// exempt, so this must NOT be flagged.
    pub fn new() -> Self {
        let mut reg = MetricRegistry::new();
        reg.counter("baseline_ops");
        Baseline
    }
}
