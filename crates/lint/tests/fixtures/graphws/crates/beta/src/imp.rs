//! Panic sites of the fixture workspace, reached only through the
//! alpha crate's seed: an inherent method, a trait impl, and a free fn.

pub struct Widget;

impl Widget {
    pub fn deep_check(&self, n: u64) {
        assert!(n > 0, "fixture inherent-method panic");
    }
}

pub trait Run {
    fn run(&self);
}

impl Run for Widget {
    fn run(&self) {
        panic!("fixture trait-impl panic");
    }
}

pub fn direct_panic() {
    panic!("fixture free-fn panic");
}

/// Unreachable from any seed: must NOT be flagged.
pub fn dormant_panic() {
    panic!("never reached from a recoverable surface");
}
