//! Middle of the fixture call chains: cross-file free, method, and
//! trait-impl edges all route through here.

pub fn helper() {
    let w = make_widget();
    w.deep_check(1);
    spin(&w);
    direct_panic();
}

fn spin(w: &Widget) {
    w.run();
}

fn make_widget() -> Widget {
    Widget
}
