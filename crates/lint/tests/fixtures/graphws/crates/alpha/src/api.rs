//! Seed surface of the call-graph fixture workspace.

pub struct AlphaError;

/// Recoverable seed: returns `Result<_, AlphaError>` where `AlphaError`
/// is a workspace-declared type.
pub fn entry() -> Result<u64, AlphaError> {
    helper();
    Ok(0)
}

/// Not a seed: the error type is not declared in this workspace.
pub fn stdlib_result() -> Result<u64, String> {
    Ok(1)
}

/// Swallowed-error site: discards the fallible `entry()`.
pub fn swallows() {
    let _ = entry();
}

/// Digest sink by name; taints its ancestors onto the R2 set.
pub fn digest_of(xs: &[u64]) -> u64 {
    xs.iter().sum()
}

/// Ancestor of a digest sink: on the R2 set without being a seed.
pub fn publish() -> u64 {
    digest_of(&[1, 2, 3])
}
