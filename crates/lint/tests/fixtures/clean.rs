//! Tricky negatives: nothing here is flagged even with every rule on.

use std::collections::BTreeMap;

/// Doc comments may mention `SystemTime`, `.unwrap()`, and even the
/// suppression grammar `// lmp-lint: allow(no-panic)` without penalty.
fn clean(map: &BTreeMap<u32, u32>) -> u64 {
    let msg = "panic! and thread_rng() in strings are inert";
    let raw = r#"SystemTime::now() in raw strings too"#;
    let lifetime: &'static str = "lifetimes are not char literals";
    let ch = '\n';
    let mut acc = 0u64;
    for (k, v) in map.iter() {
        acc = acc.wrapping_add(u64::from(*k) ^ u64::from(*v));
    }
    let _ = (msg, raw, lifetime, ch);
    acc
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_do_anything() {
        super::clean(&std::collections::BTreeMap::new());
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
