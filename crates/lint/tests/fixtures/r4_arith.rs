//! R4 fixture: bare arithmetic on bounds/translation paths.

const FRAME: u64 = 4 * 1024;

fn violations(base: u64, len: u64, idx: u64) -> u64 {
    let end = base + len;
    let span = end - base;
    let byte = idx * FRAME;
    end ^ span ^ byte
}

fn negatives(base: u64, len: u64) -> Option<u64> {
    let end = base.checked_add(len)?;
    let slack = end.saturating_sub(base);
    let neg = -1i64;
    let deref = &mut *Box::new(0u64);
    let _ = (slack, neg, deref);
    end.checked_mul(2)
}

fn bounds<T>(xs: &[T]) -> usize where T: Clone + Send { xs.len() }

fn show(_x: &(impl Clone + Send)) {}
