//! The token scanner: comment/string blanking, `#[cfg(test)]` region
//! tracking, per-rule token matching, and suppression handling.
//!
//! The call-graph layers (`items`, `graph`, `reach`) build on the same
//! blanked, flat token stream this module produces; the internals are
//! `pub(crate)` for that reason.

use std::collections::BTreeSet;

/// The enforced rule catalog. `BareAllow`/`UnusedAllow` police the
/// suppression mechanism itself (R5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: wall-clock time or ambient randomness.
    WallClock,
    /// R2: iteration over an unordered map/set on a digest-feeding path.
    UnorderedIter,
    /// R3: panic-family call in a recoverable module.
    NoPanic,
    /// R4: bare `+`/`-`/`*` in bounds/translation arithmetic.
    UncheckedArith,
    /// R5: suppression without a justification (or with an unknown rule).
    BareAllow,
    /// R5: suppression that matched no finding.
    UnusedAllow,
    /// R6: a `Result` from a fallible workspace call discarded with
    /// `let _ =` or a statement-final `.ok()`.
    SwallowedError,
    /// R7: metric registration on a constructor-reachable path that does
    /// not go through the lazy-registration idiom.
    EagerMetric,
}

impl Rule {
    /// The stable rule name used in findings and `allow(...)` comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::UnorderedIter => "unordered-iter",
            Rule::NoPanic => "no-panic",
            Rule::UncheckedArith => "unchecked-arith",
            Rule::BareAllow => "bare-allow",
            Rule::UnusedAllow => "unused-allow",
            Rule::SwallowedError => "swallowed-error",
            Rule::EagerMetric => "eager-metric",
        }
    }

    fn from_name(name: &str) -> Option<Rule> {
        match name {
            "wall-clock" => Some(Rule::WallClock),
            "unordered-iter" => Some(Rule::UnorderedIter),
            "no-panic" => Some(Rule::NoPanic),
            "unchecked-arith" => Some(Rule::UncheckedArith),
            "swallowed-error" => Some(Rule::SwallowedError),
            "eager-metric" => Some(Rule::EagerMetric),
            _ => None,
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding, rendered as `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
    /// For call-graph findings: the seed-to-site call chain, one
    /// `qual::name (file:line)` hop per entry, seed first. Empty for
    /// file-local findings. Rendered by `--explain` and the JSON format.
    pub chain: Vec<String>,
}

impl Finding {
    /// A file-local finding (no call chain); `file` is filled in by the
    /// caller once the label is known.
    pub(crate) fn local(line: usize, rule: Rule, message: String) -> Finding {
        Finding {
            file: String::new(),
            line,
            rule,
            message,
            chain: Vec::new(),
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Which scoped rules apply to a file (R1 and R5 always apply).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileClass {
    /// R2: the file constructs snapshots, digests, fault plans, or
    /// migration/balancing decisions.
    pub digest_path: bool,
    /// R3: the file is a recoverable module.
    pub recoverable: bool,
    /// R4: the file is bounds/translation arithmetic.
    pub arith_path: bool,
}

/// One source line after blanking: executable code with comments and
/// string/char literals replaced by spaces, plus the comment text.
#[derive(Debug, Default, Clone)]
pub(crate) struct Line {
    pub(crate) code: String,
    pub(crate) comment: String,
}

/// A parsed `lmp-lint: allow(...)` suppression.
#[derive(Debug)]
pub(crate) struct Allow {
    pub(crate) comment_line: usize,
    pub(crate) target_line: usize,
    pub(crate) rule: Option<Rule>,
    pub(crate) raw_rule: String,
    pub(crate) justified: bool,
    pub(crate) used: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    Word(String),
    Punct(char),
}

/// A token plus its 0-indexed source line. Rules run over the flat stream
/// so they see through multi-line method chains and `for` headers.
pub(crate) type FTok = (Tok, usize);

/// A file's blanked, tokenized form — the shared substrate for both the
/// local rules here and the call-graph layers (`items`, `reach`).
pub(crate) struct Prepared {
    pub(crate) lines: Vec<Line>,
    pub(crate) in_test: Vec<bool>,
    pub(crate) per_line: Vec<Vec<Tok>>,
    pub(crate) flat: Vec<FTok>,
}

/// Blank, mark test regions, and tokenize `source` once.
pub(crate) fn prepare(source: &str) -> Prepared {
    let lines = blank(source);
    let in_test = test_regions(&lines);
    let per_line: Vec<Vec<Tok>> = lines.iter().map(|l| tokenize(&l.code)).collect();
    let flat: Vec<FTok> = per_line
        .iter()
        .enumerate()
        .flat_map(|(i, v)| v.iter().cloned().map(move |t| (t, i)))
        .collect();
    Prepared {
        lines,
        in_test,
        per_line,
        flat,
    }
}

/// Run the file-local rules (no suppression handling, no call graph).
pub(crate) fn local_findings(p: &Prepared, class: FileClass) -> Vec<Finding> {
    let mut findings = Vec::new();
    let hash_names = collect_hash_names(&p.flat, &p.in_test);
    rule_wall_clock(&p.flat, &mut findings);
    if class.digest_path {
        rule_unordered_iter(&p.flat, &hash_names, &p.in_test, &mut findings);
    }
    if class.recoverable {
        rule_no_panic(&p.flat, &p.in_test, &mut findings);
    }
    if class.arith_path {
        rule_unchecked_arith(&p.flat, &p.per_line, &p.in_test, &mut findings);
    }
    findings
}

/// Apply suppressions: a justified allow removes that rule's findings on
/// its target line; everything else about the mechanism is an error.
pub(crate) fn apply_allows(lines: &[Line], findings: &mut Vec<Finding>) {
    let mut allows = collect_allows(lines);
    findings.retain(|f| {
        let mut suppressed = false;
        for a in allows.iter_mut() {
            if a.justified && a.rule == Some(f.rule) && a.target_line == f.line {
                a.used = true;
                suppressed = true;
            }
        }
        !suppressed
    });
    for a in &allows {
        if a.rule.is_none() {
            findings.push(Finding::local(a.comment_line, Rule::BareAllow, format!("allow(...) names unknown rule `{}`", a.raw_rule)));
        } else if !a.justified {
            findings.push(Finding::local(a.comment_line, Rule::BareAllow, format!(
                    "allow({}) carries no justification — write `// lmp-lint: allow({}) — <why>`",
                    a.raw_rule, a.raw_rule
                )));
        } else if !a.used {
            findings.push(Finding::local(a.comment_line, Rule::UnusedAllow, format!(
                    "allow({}) suppresses nothing on line {} — remove it",
                    a.raw_rule, a.target_line
                )));
        }
    }
}

/// Stamp the file label, order, and dedup a finding batch.
pub(crate) fn finalize(label: &str, mut findings: Vec<Finding>) -> Vec<Finding> {
    for f in &mut findings {
        f.file = label.to_string();
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    findings.dedup();
    findings
}

/// Scan one file's source. `label` is used verbatim in findings.
pub fn scan_source(label: &str, source: &str, class: FileClass) -> Vec<Finding> {
    let p = prepare(source);
    let mut findings = local_findings(&p, class);
    apply_allows(&p.lines, &mut findings);
    finalize(label, findings)
}

// ---------------------------------------------------------------- blanking

/// Replace comments and string/char literal contents with spaces, keeping
/// line structure and column positions; capture comment text per line.
pub(crate) fn blank(source: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let mut st = St::Code;
    let mut out: Vec<Line> = Vec::new();
    for raw in source.lines() {
        let mut line = Line::default();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        // A line comment never continues to the next line.
        if st == St::LineComment {
            st = St::Code;
        }
        while i < chars.len() {
            let c = chars[i];
            match st {
                St::Code => {
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        st = St::LineComment;
                        line.comment.push_str(&raw[byte_of(raw, i)..]);
                        line.code.push_str(&" ".repeat(chars.len() - i));
                        break;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        st = St::BlockComment(1);
                        line.code.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        st = St::Str;
                        line.code.push('"');
                        i += 1;
                    } else if c == 'r'
                        && matches!(chars.get(i + 1), Some('"') | Some('#'))
                        && raw_str_hashes(&chars, i + 1).is_some()
                    {
                        let hashes = raw_str_hashes(&chars, i + 1).unwrap_or(0);
                        st = St::RawStr(hashes);
                        let consumed = 1 + hashes as usize + 1; // r##"
                        line.code.push_str(&" ".repeat(consumed));
                        i += consumed;
                    } else if c == '\'' {
                        // Char literal vs lifetime: a literal closes within a
                        // few chars; a lifetime has no closing quote.
                        if let Some(close) = char_literal_end(&chars, i) {
                            line.code.push('\'');
                            line.code.push_str(&" ".repeat(close - i - 1));
                            line.code.push('\'');
                            i = close + 1;
                        } else {
                            line.code.push('\'');
                            i += 1;
                        }
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
                St::LineComment => unreachable!("handled at line start"),
                St::BlockComment(depth) => {
                    if c == '*' && chars.get(i + 1) == Some(&'/') {
                        line.comment.push_str("*/");
                        line.code.push_str("  ");
                        i += 2;
                        if depth == 1 {
                            st = St::Code;
                        } else {
                            st = St::BlockComment(depth - 1);
                        }
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        line.comment.push_str("/*");
                        line.code.push_str("  ");
                        i += 2;
                        st = St::BlockComment(depth + 1);
                    } else {
                        line.comment.push(c);
                        line.code.push(' ');
                        i += 1;
                    }
                }
                St::Str => {
                    if c == '\\' {
                        // A trailing `\` at end of line is a string
                        // continuation: only one char is present, so only
                        // one blank keeps columns aligned.
                        let consumed = if i + 1 < chars.len() { 2 } else { 1 };
                        line.code.push_str(&" ".repeat(consumed));
                        i += consumed;
                    } else if c == '"' {
                        line.code.push('"');
                        i += 1;
                        st = St::Code;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
                St::RawStr(hashes) => {
                    if c == '"' && closes_raw(&chars, i, hashes) {
                        let consumed = 1 + hashes as usize;
                        line.code.push_str(&" ".repeat(consumed));
                        i += consumed;
                        st = St::Code;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
            }
        }
        out.push(line);
    }
    out
}

fn byte_of(s: &str, char_idx: usize) -> usize {
    s.char_indices()
        .nth(char_idx)
        .map(|(b, _)| b)
        .unwrap_or(s.len())
}

/// For `r`-prefixed strings: number of `#`s before the opening quote, or
/// `None` if this is not a raw string start (e.g. the identifier `r#loop`).
fn raw_str_hashes(chars: &[char], mut i: usize) -> Option<u32> {
    let mut hashes = 0;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Where a char literal starting at `i` (a `'`) closes, if it is one.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escape: find the closing quote within a small window
            // (\n, \', \u{10FFFF} are all short). A `"` cannot occur
            // inside an escape, so stop there rather than swallow a
            // real string opener into a bogus literal.
            (i + 3..chars.len().min(i + 12))
                .take_while(|&j| chars[j] != '"')
                .find(|&j| chars[j] == '\'')
        }
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(i + 2),
        _ => None,
    }
}

// ----------------------------------------------------------- test regions

/// Per-line flag: inside a `#[cfg(test)]`-gated brace region.
pub(crate) fn test_regions(lines: &[Line]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut region_starts: Vec<i64> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let squeezed: String = line.code.chars().filter(|c| !c.is_whitespace()).collect();
        if squeezed.contains("#[cfg(test)]") {
            pending = true;
        }
        if !region_starts.is_empty() {
            flags[idx] = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending {
                        region_starts.push(depth);
                        pending = false;
                        flags[idx] = true;
                    }
                }
                '}' => {
                    if region_starts.last() == Some(&depth) {
                        region_starts.pop();
                    }
                    depth -= 1;
                }
                ';' if pending && region_starts.is_empty() => {
                    // `#[cfg(test)] use …;` — attribute consumed by a
                    // braceless item.
                    pending = false;
                    flags[idx] = true;
                }
                _ => {}
            }
        }
    }
    flags
}

// ------------------------------------------------------------- tokenizing

pub(crate) fn tokenize(code: &str) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut word = String::new();
    for c in code.chars() {
        if c.is_alphanumeric() || c == '_' {
            word.push(c);
        } else {
            if !word.is_empty() {
                toks.push(Tok::Word(std::mem::take(&mut word)));
            }
            if !c.is_whitespace() {
                toks.push(Tok::Punct(c));
            }
        }
    }
    if !word.is_empty() {
        toks.push(Tok::Word(word));
    }
    toks
}

pub(crate) fn word(t: &Tok) -> Option<&str> {
    match t {
        Tok::Word(w) => Some(w),
        Tok::Punct(_) => None,
    }
}

pub(crate) fn fword(flat: &[FTok], i: usize) -> Option<&str> {
    flat.get(i).and_then(|(t, _)| word(t))
}

pub(crate) fn fpunct(flat: &[FTok], i: usize, c: char) -> bool {
    matches!(flat.get(i), Some((Tok::Punct(p), _)) if *p == c)
}

// ------------------------------------------------------------------ rules

pub(crate) fn rule_wall_clock(flat: &[FTok], out: &mut Vec<Finding>) {
    for (i, (t, li)) in flat.iter().enumerate() {
        let Some(w) = word(t) else { continue };
        let hit = match w {
            "SystemTime" => Some("std::time::SystemTime is wall-clock time"),
            "thread_rng" => Some("thread_rng() is ambient, unseeded randomness"),
            "Instant" => {
                let now_follows = fpunct(flat, i + 1, ':')
                    && fpunct(flat, i + 2, ':')
                    && fword(flat, i + 3) == Some("now");
                let time_precedes = i >= 3
                    && fword(flat, i - 3) == Some("time")
                    && fpunct(flat, i - 2, ':')
                    && fpunct(flat, i - 1, ':');
                if now_follows || time_precedes {
                    Some("std::time::Instant is wall-clock time")
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(why) = hit {
            out.push(Finding::local(li + 1, Rule::WallClock, format!("{why}; the simulation is sim-time/seeded only")));
        }
    }
}

pub(crate) const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Identifiers bound to `HashMap`/`HashSet` on non-test lines: struct
/// fields and `let`/params via `name: HashMap<…>`, plus constructor
/// assignments `name = HashMap::new()`.
pub(crate) fn collect_hash_names(flat: &[FTok], in_test: &[bool]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, (t, li)) in flat.iter().enumerate() {
        if in_test[*li] {
            continue;
        }
        let Some(w) = word(t) else { continue };
        if w != "HashMap" && w != "HashSet" {
            continue;
        }
        // `name : [& mut std :: collections ::] HashMap`
        let mut j = i;
        let mut crossed_colon = false;
        while j > 0 {
            j -= 1;
            match &flat[j].0 {
                Tok::Punct(':') => crossed_colon = true,
                Tok::Punct('&') => {}
                Tok::Word(p) if p == "std" || p == "collections" || p == "mut" => {}
                Tok::Word(name) if crossed_colon => {
                    names.insert(name.clone());
                    break;
                }
                _ => break,
            }
        }
        // `name = HashMap::new()` / `::with_capacity` / `::default`
        let ctor_follows = fpunct(flat, i + 1, ':')
            && fpunct(flat, i + 2, ':')
            && matches!(
                fword(flat, i + 3),
                Some("new") | Some("with_capacity") | Some("default")
            );
        if ctor_follows && i >= 2 && fpunct(flat, i - 1, '=') {
            if let Some(name) = fword(flat, i - 2) {
                names.insert(name.to_string());
            }
        }
    }
    names
}

pub(crate) fn rule_unordered_iter(
    flat: &[FTok],
    hash_names: &BTreeSet<String>,
    in_test: &[bool],
    out: &mut Vec<Finding>,
) {
    // `name.iter()` and friends (also matches `self.name\n.iter()` across
    // line breaks).
    for (i, (t, li)) in flat.iter().enumerate() {
        if in_test[*li] {
            continue;
        }
        let Some(w) = word(t) else { continue };
        if hash_names.contains(w)
            && fpunct(flat, i + 1, '.')
            && fpunct(flat, i + 3, '(')
        {
            if let Some(m) = fword(flat, i + 2) {
                if ITER_METHODS.contains(&m) {
                    out.push(Finding::local(flat[i + 2].1 + 1, Rule::UnorderedIter, format!(
                            "`{w}.{m}()` iterates an unordered map/set on a digest-feeding \
                             path; use BTreeMap/BTreeSet or sort before use"
                        )));
                }
            }
        }
        // `for … in <expr mentioning a hash-typed name> {`
        if w == "for" {
            // Find `in` before the loop body opens.
            let mut q = i + 1;
            let mut in_at = None;
            while q < flat.len() && q < i + 40 {
                match &flat[q].0 {
                    Tok::Word(kw) if kw == "in" => {
                        in_at = Some(q);
                        break;
                    }
                    Tok::Punct('{') | Tok::Punct(';') => break,
                    _ => {}
                }
                q += 1;
            }
            if let Some(ip) = in_at {
                let mut r = ip + 1;
                while r < flat.len() && r < ip + 60 {
                    match &flat[r].0 {
                        Tok::Punct('{') | Tok::Punct(';') => break,
                        Tok::Word(name) if hash_names.contains(name) => {
                            out.push(Finding::local(flat[r].1 + 1, Rule::UnorderedIter, format!(
                                    "`for … in` over unordered `{name}` on a digest-feeding \
                                     path; use BTreeMap/BTreeSet or sort before use"
                                )));
                            break;
                        }
                        _ => {}
                    }
                    r += 1;
                }
            }
        }
    }
}

pub(crate) const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

pub(crate) fn rule_no_panic(flat: &[FTok], in_test: &[bool], out: &mut Vec<Finding>) {
    for (i, (t, li)) in flat.iter().enumerate() {
        if in_test[*li] {
            continue;
        }
        let Some(w) = word(t) else { continue };
        let hit = if (w == "unwrap" || w == "expect")
            && i > 0
            && fpunct(flat, i - 1, '.')
            && fpunct(flat, i + 1, '(')
        {
            Some(format!(".{w}()"))
        } else if PANIC_MACROS.contains(&w) && fpunct(flat, i + 1, '!') {
            Some(format!("{w}!"))
        } else {
            None
        };
        if let Some(what) = hit {
            out.push(Finding::local(li + 1, Rule::NoPanic, format!(
                    "`{what}` in a recoverable module; return PoolError/FabricError instead"
                )));
        }
    }
}

/// Left-operand words that mean the following `+`/`-`/`*` is *not* binary
/// arithmetic (`&mut *x`, `return -1`, …).
const NON_OPERAND_KEYWORDS: &[&str] = &[
    "mut", "return", "in", "let", "if", "else", "match", "break", "move",
];

pub(crate) fn rule_unchecked_arith(
    flat: &[FTok],
    per_line: &[Vec<Tok>],
    in_test: &[bool],
    out: &mut Vec<Finding>,
) {
    for (i, (t, li)) in flat.iter().enumerate() {
        if in_test[*li] {
            continue;
        }
        let Tok::Punct(op) = t else { continue };
        if !matches!(op, '+' | '-' | '*') {
            continue;
        }
        // `->` is not arithmetic.
        if *op == '-' && fpunct(flat, i + 1, '>') {
            continue;
        }
        // Binary only: unary minus/deref have no left operand.
        let prev_is_operand = match i.checked_sub(1).and_then(|p| flat.get(p)) {
            Some((Tok::Word(w), _)) => !NON_OPERAND_KEYWORDS.contains(&w.as_str()),
            Some((Tok::Punct(p), _)) => matches!(p, ')' | ']'),
            None => false,
        };
        if !prev_is_operand {
            continue;
        }
        // `T: A + B` trait bounds (generic/impl/where context on this line).
        let bound_ctx = per_line[*li]
            .iter()
            .any(|t| matches!(word(t), Some("dyn") | Some("impl") | Some("where")));
        if *op == '+' && bound_ctx {
            continue;
        }
        // Two numeric literals: const evaluation traps overflow at compile
        // time, so `2 * 1024` is safe.
        let is_num = |t: Option<&FTok>| {
            matches!(t, Some((Tok::Word(w), _)) if w.starts_with(|c: char| c.is_ascii_digit()))
        };
        if is_num(flat.get(i - 1)) && is_num(flat.get(i + 1)) {
            continue;
        }
        out.push(Finding::local(li + 1, Rule::UncheckedArith, format!(
                "bare `{op}` on a bounds/translation path; use checked_*/saturating_* \
                 arithmetic"
            )));
    }
}

// ----------------------------------------------------------- suppressions

pub(crate) fn collect_allows(lines: &[Line]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        // Doc comments (`///`, `//!`) never carry suppressions — they
        // *describe* the grammar (this crate's own docs included).
        let ctrim = line.comment.trim_start();
        if ctrim.starts_with("///") || ctrim.starts_with("//!") {
            continue;
        }
        let mut rest = line.comment.as_str();
        while let Some(at) = rest.find("lmp-lint:") {
            rest = &rest[at + "lmp-lint:".len()..];
            let Some(ap) = rest.find("allow(") else { break };
            let after = &rest[ap + "allow(".len()..];
            let Some(close) = after.find(')') else { break };
            let raw_rule = after[..close].trim().to_string();
            let tail = after[close + 1..].trim_start();
            // Justification: separator (— / - / :) plus non-empty text, or
            // any non-empty trailing prose.
            let tail = tail
                .trim_start_matches(['—', '–', '-', ':'])
                .trim();
            let target_line = if line.code.trim().is_empty() {
                // Standalone comment: applies to the next code line.
                lines[i + 1..]
                    .iter()
                    .position(|l| !l.code.trim().is_empty())
                    .map(|p| i + 1 + p + 1)
                    .unwrap_or(usize::MAX)
            } else {
                i + 1
            };
            allows.push(Allow {
                comment_line: i + 1,
                target_line,
                rule: Rule::from_name(&raw_rule),
                raw_rule,
                justified: !tail.is_empty(),
                used: false,
            });
            rest = after;
        }
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_all() -> FileClass {
        FileClass {
            digest_path: true,
            recoverable: true,
            arith_path: true,
        }
    }

    fn rules(findings: &[Finding]) -> Vec<(usize, Rule)> {
        findings.iter().map(|f| (f.line, f.rule)).collect()
    }

    #[test]
    fn wall_clock_tokens_are_flagged_everywhere() {
        let src = "fn f() {\n    let t = Instant::now();\n    let r = thread_rng();\n}\n";
        let f = scan_source("x.rs", src, FileClass::default());
        assert_eq!(
            rules(&f),
            vec![(2, Rule::WallClock), (3, Rule::WallClock)]
        );
    }

    #[test]
    fn strings_and_comments_do_not_trigger() {
        let src = "fn f() {\n    let s = \"call .unwrap() or panic! now\";\n    // SystemTime::now() and x.unwrap()\n}\n";
        assert!(scan_source("x.rs", src, class_all()).is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_exempt_from_r3() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\n";
        assert!(scan_source("x.rs", src, class_all()).is_empty());
    }

    #[test]
    fn hash_iteration_is_flagged_in_digest_files_only() {
        let src = "struct S { m: HashMap<u32, u32> }\nimpl S {\n    fn f(&self) { for v in self.m.values() { let _ = v; } }\n}\n";
        let hit = scan_source("x.rs", src, class_all());
        assert!(hit.iter().any(|f| f.rule == Rule::UnorderedIter));
        let miss = scan_source("x.rs", src, FileClass::default());
        assert!(miss.is_empty());
    }

    #[test]
    fn multi_line_method_chains_are_seen() {
        let src = "struct S { m: HashMap<u32, u32> }\nimpl S {\n    fn f(&self) -> Vec<u32> {\n        self.m\n            .iter()\n            .map(|(k, _)| *k)\n            .collect()\n    }\n}\n";
        let f = scan_source("x.rs", src, class_all());
        assert_eq!(rules(&f), vec![(5, Rule::UnorderedIter)]);
    }

    #[test]
    fn justified_allow_suppresses_and_unused_allow_errors() {
        let good = "fn f(x: Option<u32>) {\n    // lmp-lint: allow(no-panic) — constructor precondition, documented.\n    x.unwrap();\n}\n";
        assert!(scan_source("x.rs", good, class_all()).is_empty());
        let unused = "// lmp-lint: allow(no-panic) — nothing here needs it.\nfn f() {}\n";
        let f = scan_source("x.rs", unused, class_all());
        assert_eq!(rules(&f), vec![(1, Rule::UnusedAllow)]);
    }

    #[test]
    fn bare_allow_is_an_error_and_does_not_suppress() {
        let src = "fn f(x: Option<u32>) {\n    // lmp-lint: allow(no-panic)\n    x.unwrap();\n}\n";
        let f = scan_source("x.rs", src, class_all());
        assert_eq!(rules(&f), vec![(2, Rule::BareAllow), (3, Rule::NoPanic)]);
    }

    #[test]
    fn doc_comments_describing_the_grammar_are_ignored() {
        let src = "//! Use `// lmp-lint: allow(no-panic)` to suppress.\nfn f() {}\n";
        assert!(scan_source("x.rs", src, class_all()).is_empty());
    }

    #[test]
    fn arith_rule_flags_bare_ops_not_checked_ones() {
        let src = "fn f(a: u64, b: u64) -> u64 {\n    let c = a + b;\n    a.checked_mul(c).unwrap_or(0)\n}\n";
        let f = scan_source(
            "x.rs",
            src,
            FileClass {
                arith_path: true,
                ..FileClass::default()
            },
        );
        assert_eq!(rules(&f), vec![(2, Rule::UncheckedArith)]);
    }
}
