//! CLI entry point: `lmp-lint [--workspace] [--format text|json] [paths…]`.
//!
//! Exit status: 0 when clean, 1 on any finding, 2 on usage/IO errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lmp_lint::{scan_path, to_json, workspace_sources, Finding};

struct Args {
    workspace: bool,
    json: bool,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        json: false,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("text") => args.json = false,
                other => {
                    return Err(format!(
                        "--format expects `text` or `json`, got {:?}",
                        other.unwrap_or("<missing>")
                    ))
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: lmp-lint [--workspace] [--format text|json] [paths…]\n\
                     \n\
                     Scans Rust sources for the workspace determinism rules:\n\
                     wall-clock, unordered-iter, no-panic, unchecked-arith, and\n\
                     the allow-suppression rules (bare-allow, unused-allow).\n\
                     With --workspace, walks crates/, src/, tests/, examples/\n\
                     under the current directory. Exits 1 on any finding."
                );
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if !args.workspace && args.paths.is_empty() {
        return Err("nothing to scan: pass --workspace or explicit paths".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lmp-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let root = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut targets: Vec<PathBuf> = Vec::new();
    if args.workspace {
        match workspace_sources(&root) {
            Ok(mut files) => targets.append(&mut files),
            Err(e) => {
                eprintln!("lmp-lint: walking {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }
    for p in &args.paths {
        if p.is_dir() {
            let mut sub = Vec::new();
            if let Err(e) = collect_dir(p, &mut sub) {
                eprintln!("lmp-lint: walking {}: {e}", p.display());
                return ExitCode::from(2);
            }
            sub.sort();
            targets.extend(sub);
        } else {
            targets.push(p.clone());
        }
    }
    targets.dedup();

    let mut findings: Vec<Finding> = Vec::new();
    for path in &targets {
        match scan_path(&root, path) {
            Ok(mut f) => findings.append(&mut f),
            Err(e) => {
                eprintln!("lmp-lint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule))
    });

    if args.json {
        println!("{}", to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
        if !findings.is_empty() {
            eprintln!(
                "lmp-lint: {} finding{} across {} file{}",
                findings.len(),
                if findings.len() == 1 { "" } else { "s" },
                targets.len(),
                if targets.len() == 1 { "" } else { "s" },
            );
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn collect_dir(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_dir(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
