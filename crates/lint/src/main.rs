//! CLI entry point:
//! `lmp-lint [--workspace] [--format text|json] [--explain] [--check-superset] [paths…]`.
//!
//! `--workspace` runs the full call-graph analysis (R1–R7) over the
//! workspace under the current directory; explicit paths run the
//! file-local rules only (R1, R4, R5). `--explain` prints the
//! seed-to-site call chain under each graph finding; `--check-superset`
//! additionally enforces the transition gate (inferred R2/R3 coverage
//! must contain every file from the frozen hand lists).
//!
//! Exit status: 0 when clean, 1 on any finding or superset violation,
//! 2 on usage/IO errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lmp_lint::{
    analyze_files, check_superset, scan_path, to_json, workspace_sources, Finding,
};

struct Args {
    workspace: bool,
    json: bool,
    explain: bool,
    superset: bool,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        json: false,
        explain: false,
        superset: false,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--explain" => args.explain = true,
            "--check-superset" => args.superset = true,
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("text") => args.json = false,
                other => {
                    return Err(format!(
                        "--format expects `text` or `json`, got {:?}",
                        other.unwrap_or("<missing>")
                    ))
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: lmp-lint [--workspace] [--format text|json] [--explain]\n\
                     \x20               [--check-superset] [paths…]\n\
                     \n\
                     Scans Rust sources for the workspace determinism rules.\n\
                     With --workspace, builds the cross-file call graph and runs\n\
                     the full rule set (wall-clock, unordered-iter, no-panic,\n\
                     unchecked-arith, swallowed-error, eager-metric, plus the\n\
                     allow-suppression rules); explicit paths run the file-local\n\
                     rules only. --explain prints seed-to-site call chains;\n\
                     --check-superset enforces the transition gate against the\n\
                     frozen hand lists. Exits 1 on any finding."
                );
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if !args.workspace && args.paths.is_empty() {
        return Err("nothing to scan: pass --workspace or explicit paths".to_string());
    }
    if args.superset && !args.workspace {
        return Err("--check-superset requires --workspace".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lmp-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let root = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut findings: Vec<Finding> = Vec::new();
    let mut scanned = 0usize;
    let mut superset_violations: Vec<String> = Vec::new();

    if args.workspace {
        let files = match workspace_sources(&root) {
            Ok(files) => files,
            Err(e) => {
                eprintln!("lmp-lint: walking {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        scanned += files.len();
        let analysis = match analyze_files(&root, &files) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("lmp-lint: reading workspace sources: {e}");
                return ExitCode::from(2);
            }
        };
        if args.superset {
            superset_violations = check_superset(&analysis);
        }
        findings.extend(analysis.findings);
    }

    let mut path_targets: Vec<PathBuf> = Vec::new();
    for p in &args.paths {
        if p.is_dir() {
            let mut sub = Vec::new();
            if let Err(e) = collect_dir(p, &mut sub) {
                eprintln!("lmp-lint: walking {}: {e}", p.display());
                return ExitCode::from(2);
            }
            sub.sort();
            path_targets.extend(sub);
        } else {
            path_targets.push(p.clone());
        }
    }
    path_targets.dedup();
    scanned += path_targets.len();
    for path in &path_targets {
        match scan_path(&root, path) {
            Ok(mut f) => findings.append(&mut f),
            Err(e) => {
                eprintln!("lmp-lint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule))
    });

    if args.json {
        println!("{}", to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
            if args.explain && !f.chain.is_empty() {
                for (i, hop) in f.chain.iter().enumerate() {
                    println!("    {}{hop}", if i == 0 { "chain: " } else { "  -> " });
                }
            }
        }
        if !findings.is_empty() {
            eprintln!(
                "lmp-lint: {} finding{} across {} file{}",
                findings.len(),
                if findings.len() == 1 { "" } else { "s" },
                scanned,
                if scanned == 1 { "" } else { "s" },
            );
        }
    }
    for v in &superset_violations {
        eprintln!("lmp-lint: superset gate: {v}");
    }

    if findings.is_empty() && superset_violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn collect_dir(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_dir(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
