//! Reachability analysis: seed inference, digest taint, and the graph
//! rules (R2 v2, R3 v2, R6 `swallowed-error`, R7 `eager-metric`).
//!
//! Seeds and sinks are *inferred*, never hand-listed:
//!
//! * **R3 seeds** — (1) every public library `fn` returning
//!   `Result<_, E>` where `E` is a workspace-declared type (`PoolError`,
//!   `FabricError`, `ClusterError`, `SchedulePastError`, `OutOfRegion`,
//!   …); (2) every public method of the sim `Engine` (the event
//!   dispatch); (3) every public `fn` taking a recovery orchestration
//!   type (`ProtectionManager`, `RecoveryOrchestrator`, `FailureDetector`,
//!   `Membership`). Anything reachable from a seed is a recoverable path:
//!   a panic there turns an injected fault into a process abort.
//! * **R2 sinks** — functions that construct snapshots, digests, or
//!   plans: they mention `TelemetrySnapshot` / `FaultPlan` /
//!   `MigrationPlan` / `SizingPlan`, live in an `impl` of one, or are
//!   named like a digest helper (`*digest*`, `fnv1a`, `place_member`,
//!   `place_recovery`). The digest-tainted set is the sinks plus their
//!   callers and callees, plus the whole recoverable set (every
//!   recoverable path is replayed and digest-checked by the chaos
//!   harness).

use crate::graph::{file_role, FileRole, Graph};
use crate::items::FileItems;
use crate::scan::{
    apply_allows, collect_hash_names, finalize, fpunct, fword, local_findings,
    prepare, FTok, Finding, Prepared, Rule, Tok, ITER_METHODS, PANIC_MACROS,
};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Parameter types that mark a public `fn` as recovery orchestration.
const RECOVERY_PARAM_TYPES: &[&str] = &[
    "ProtectionManager",
    "RecoveryOrchestrator",
    "FailureDetector",
    "Membership",
];

/// Types whose construction makes a `fn` a digest/plan sink.
const SINK_TYPES: &[&str] = &[
    "TelemetrySnapshot",
    "FaultPlan",
    "MigrationPlan",
    "SizingPlan",
];

/// Digest-helper function names (exact or substring).
fn is_sink_name(name: &str) -> bool {
    name.contains("digest")
        || name == "fnv1a"
        || name == "place_member"
        || name == "place_recovery"
}

/// The full workspace analysis result.
#[derive(Debug)]
pub struct Analysis {
    /// All findings, suppressions applied, sorted per file.
    pub findings: Vec<Finding>,
    /// Files containing at least one digest-tainted `fn` (inferred R2 set).
    pub r2_files: BTreeSet<String>,
    /// Files containing at least one recoverable-reachable `fn` (inferred
    /// R3 set).
    pub r3_files: BTreeSet<String>,
    /// Human-readable seed labels, for `--explain` diagnostics.
    pub seed_labels: Vec<String>,
}

/// Analyze a workspace given `(relative-path, source)` pairs in sorted
/// order. `classify` supplies the file-local rule classes (today: R4).
pub fn analyze(files: &[(String, String)]) -> Analysis {
    let prepared: Vec<Prepared> = files.iter().map(|(_, s)| prepare(s)).collect();
    let items: Vec<(String, FileItems)> = files
        .iter()
        .zip(&prepared)
        .map(|((p, _), prep)| (p.clone(), crate::items::extract(prep)))
        .collect();
    let graph = Graph::build(&items);

    // The workspace type universe (library declarations only).
    let mut decl_types: BTreeSet<String> = BTreeSet::new();
    for (path, it) in &items {
        if file_role(path) == FileRole::Lib {
            decl_types.extend(it.type_decls.iter().cloned());
        }
    }

    // ---- R3 seeds ----
    let mut r3_seeds: BTreeSet<usize> = BTreeSet::new();
    for (idx, n) in graph.nodes.iter().enumerate() {
        let f = &n.item;
        if !f.is_pub {
            continue;
        }
        let result_of_workspace_err = f.ret.first().map(String::as_str) == Some("Result")
            && f.ret.last().map(|e| decl_types.contains(e)).unwrap_or(false);
        let engine_dispatch = f.qual == "Engine";
        let recovery_param = f
            .params
            .iter()
            .any(|p| RECOVERY_PARAM_TYPES.contains(&p.as_str()));
        if result_of_workspace_err || engine_dispatch || recovery_param {
            r3_seeds.insert(idx);
        }
    }
    let r3_parent = graph.reach(&r3_seeds, false);
    let r3_set: BTreeSet<usize> = (0..graph.nodes.len())
        .filter(|&i| r3_parent[i].is_some())
        .collect();

    // ---- R2 sinks and taint ----
    let mut sinks: BTreeSet<usize> = BTreeSet::new();
    for (idx, n) in graph.nodes.iter().enumerate() {
        let f = &n.item;
        let mentions_sink = SINK_TYPES.iter().any(|t| f.mentions.contains(*t));
        let impl_of_sink = SINK_TYPES.contains(&f.qual.as_str());
        if mentions_sink || impl_of_sink || is_sink_name(&f.name) {
            sinks.insert(idx);
        }
    }
    let anc_parent = graph.reach(&sinks, true); // callers of sinks
    let desc_parent = graph.reach(&sinks, false); // callees of sinks
    let mut r2_set: BTreeSet<usize> = r3_set.clone();
    for i in 0..graph.nodes.len() {
        if anc_parent[i].is_some() || desc_parent[i].is_some() {
            r2_set.insert(i);
        }
    }

    // ---- R7 constructor reachability ----
    let mut ctor_seeds: BTreeSet<usize> = BTreeSet::new();
    for (idx, n) in graph.nodes.iter().enumerate() {
        let f = &n.item;
        if f.is_pub && (f.name == "new" || f.name.starts_with("new_")) {
            ctor_seeds.insert(idx);
        }
    }
    let ctor_parent = graph.reach(&ctor_seeds, false);

    // Nodes grouped by file for site scanning.
    let mut nodes_by_file: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (idx, n) in graph.nodes.iter().enumerate() {
        nodes_by_file.entry(n.file.as_str()).or_default().push(idx);
    }

    let mut findings = Vec::new();
    let mut r2_files = BTreeSet::new();
    let mut r3_files = BTreeSet::new();
    for ((path, _), prep) in files.iter().zip(&prepared) {
        // File-local rules: R1 everywhere, R4 on the designated arith
        // files. R2/R3 scoping is the graph's job now.
        let mut fs = local_findings(prep, crate::classify(Path::new(path)));
        for &idx in nodes_by_file.get(path.as_str()).map(|v| v.as_slice()).unwrap_or(&[]) {
            let node = &graph.nodes[idx];
            let Some((b0, b1)) = node.item.body else {
                continue;
            };
            if r3_set.contains(&idx) {
                r3_files.insert(path.clone());
                let chain = graph.chain(&r3_parent, idx);
                let seed = chain.first().cloned().unwrap_or_default();
                panic_sites(&prep.flat, b0, b1, |line, what| {
                    let mut f = Finding::local(
                        line,
                        Rule::NoPanic,
                        format!(
                            "`{what}` is reachable from recoverable seed `{seed}`; \
                             return a typed error (PoolError/FabricError/…) instead"
                        ),
                    );
                    f.chain = chain.clone();
                    fs.push(f);
                });
            }
            if r2_set.contains(&idx) {
                r2_files.insert(path.clone());
                let (why, chain) = if sinks.contains(&idx) {
                    (
                        "constructs a snapshot/digest/plan".to_string(),
                        vec![graph.label(idx)],
                    )
                } else if anc_parent[idx].is_some() {
                    let chain = graph.chain(&anc_parent, idx);
                    (
                        format!(
                            "transitively feeds digest/plan sink `{}`",
                            chain.first().cloned().unwrap_or_default()
                        ),
                        chain,
                    )
                } else if desc_parent[idx].is_some() {
                    let chain = graph.chain(&desc_parent, idx);
                    (
                        format!(
                            "is called from digest/plan sink `{}`",
                            chain.first().cloned().unwrap_or_default()
                        ),
                        chain,
                    )
                } else {
                    let chain = graph.chain(&r3_parent, idx);
                    (
                        format!(
                            "is on the replayed recoverable path from `{}`",
                            chain.first().cloned().unwrap_or_default()
                        ),
                        chain,
                    )
                };
                let hash_names = collect_hash_names(&prep.flat, &prep.in_test);
                iter_sites(&prep.flat, b0, b1, &hash_names, |line, what| {
                    let mut f = Finding::local(
                        line,
                        Rule::UnorderedIter,
                        format!(
                            "{what} in a fn that {why}; use BTreeMap/BTreeSet or \
                             sort before use"
                        ),
                    );
                    f.chain = chain.clone();
                    fs.push(f);
                });
            }
            // R6 applies to every library fn: a silently dropped Result is
            // a bug magnet wherever it sits.
            swallowed_sites(&prep.flat, b0, b1, &graph, |line, what| {
                fs.push(Finding::local(line, Rule::SwallowedError, what));
            });
            // R7: metric registration reachable from a constructor must be
            // the lazy idiom — eager registration widens every pre-existing
            // snapshot and breaks the committed digests.
            if ctor_parent[idx].is_some() && node.item.qual != "MetricRegistry" {
                let chain = graph.chain(&ctor_parent, idx);
                metric_sites(&prep.flat, b0, b1, &graph, |line, method| {
                    let mut f = Finding::local(
                        line,
                        Rule::EagerMetric,
                        format!(
                            "`.{method}(...)` registers a metric on a \
                             constructor-reachable path (from `{}`); use the lazy \
                             `Option<…Id>` + `get_or_insert_with` idiom so \
                             pre-existing snapshot digests stay byte-identical",
                            chain.first().cloned().unwrap_or_default()
                        ),
                    );
                    f.chain = chain.clone();
                    fs.push(f);
                });
            }
        }
        apply_allows(&prep.lines, &mut fs);
        findings.extend(finalize(path, fs));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    let seed_labels = r3_seeds.iter().map(|&i| graph.label(i)).collect();
    Analysis {
        findings,
        r2_files,
        r3_files,
        seed_labels,
    }
}

/// Panic-family sites in `flat[b0..b1]` (same patterns as the local R3
/// rule).
fn panic_sites(
    flat: &[FTok],
    b0: usize,
    b1: usize,
    mut hit: impl FnMut(usize, String),
) {
    for i in b0..b1.min(flat.len()) {
        let Some(w) = fword(flat, i) else { continue };
        let what = if (w == "unwrap" || w == "expect")
            && i > 0
            && fpunct(flat, i - 1, '.')
            && fpunct(flat, i + 1, '(')
        {
            Some(format!(".{w}()"))
        } else if PANIC_MACROS.contains(&w) && fpunct(flat, i + 1, '!') {
            Some(format!("{w}!"))
        } else {
            None
        };
        if let Some(what) = what {
            hit(flat[i].1 + 1, what);
        }
    }
}

/// Unordered-iteration sites in `flat[b0..b1]`.
fn iter_sites(
    flat: &[FTok],
    b0: usize,
    b1: usize,
    hash_names: &BTreeSet<String>,
    mut hit: impl FnMut(usize, String),
) {
    for i in b0..b1.min(flat.len()) {
        let Some(w) = fword(flat, i) else { continue };
        if hash_names.contains(w) && fpunct(flat, i + 1, '.') && fpunct(flat, i + 3, '(') {
            if let Some(m) = fword(flat, i + 2) {
                if ITER_METHODS.contains(&m) {
                    hit(
                        flat[i + 2].1 + 1,
                        format!("`{w}.{m}()` iterates an unordered map/set"),
                    );
                }
            }
        }
        if w == "for" {
            let mut q = i + 1;
            let mut in_at = None;
            while q < flat.len() && q < i + 40 {
                match &flat[q].0 {
                    Tok::Word(kw) if kw == "in" => {
                        in_at = Some(q);
                        break;
                    }
                    Tok::Punct('{') | Tok::Punct(';') => break,
                    _ => {}
                }
                q += 1;
            }
            if let Some(ip) = in_at {
                let mut r = ip + 1;
                while r < flat.len() && r < ip + 60 {
                    match &flat[r].0 {
                        Tok::Punct('{') | Tok::Punct(';') => break,
                        Tok::Word(name) if hash_names.contains(name) => {
                            hit(
                                flat[r].1 + 1,
                                format!("`for … in` over unordered `{name}`"),
                            );
                            break;
                        }
                        _ => {}
                    }
                    r += 1;
                }
            }
        }
    }
}

/// Does a call at flat index `i` (word followed by `(`) resolve to a
/// workspace library fn returning `Result`?
fn resolves_to_fallible(flat: &[FTok], i: usize, graph: &Graph) -> Option<String> {
    let w = fword(flat, i)?;
    if !fpunct(flat, i + 1, '(') || fpunct(flat, i.wrapping_sub(1), '!') {
        return None;
    }
    let qual = if i >= 3 && fpunct(flat, i - 1, ':') && fpunct(flat, i - 2, ':') {
        fword(flat, i - 3)
    } else {
        None
    };
    let cands = graph.named(w);
    let narrowed: Vec<usize> = match qual {
        Some(q) => {
            let n: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&t| graph.nodes[t].item.qual == q)
                .collect();
            if n.is_empty() { cands.to_vec() } else { n }
        }
        None => cands.to_vec(),
    };
    narrowed
        .iter()
        .find(|&&t| {
            graph.nodes[t].item.ret.first().map(String::as_str) == Some("Result")
        })
        .map(|&t| graph.label(t))
}

/// R6 sites: `let _ = <expr with a fallible workspace call>;` and
/// statement-final `<expr>.ok();`.
fn swallowed_sites(
    flat: &[FTok],
    b0: usize,
    b1: usize,
    graph: &Graph,
    mut hit: impl FnMut(usize, String),
) {
    let end = b1.min(flat.len());
    let mut i = b0;
    while i < end {
        // `let _ = expr ;` — flag when expr contains a fallible call.
        if fword(flat, i) == Some("let")
            && fword(flat, i + 1) == Some("_")
            && fpunct(flat, i + 2, '=')
        {
            let mut depth = 0i64;
            let mut j = i + 3;
            while j < end {
                match &flat[j].0 {
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                    Tok::Punct(';') if depth <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
            for k in i + 3..j {
                if let Some(callee) = resolves_to_fallible(flat, k, graph) {
                    hit(
                        flat[i].1 + 1,
                        format!(
                            "`let _ =` discards the `Result` of `{callee}`; handle \
                             or propagate it, or justify with allow(swallowed-error)"
                        ),
                    );
                    break;
                }
            }
            i = j + 1;
            continue;
        }
        // `<expr>.ok();` as a bare statement.
        if fpunct(flat, i, '.')
            && fword(flat, i + 1) == Some("ok")
            && fpunct(flat, i + 2, '(')
            && fpunct(flat, i + 3, ')')
            && fpunct(flat, i + 4, ';')
        {
            // Statement start: walk back to the previous `;`/`{`/`}` at
            // this nesting level; a binding/return/condition uses the
            // value, a bare statement discards it.
            let mut s = i;
            let mut depth = 0i64;
            while s > b0 {
                s -= 1;
                match &flat[s].0 {
                    Tok::Punct(')') | Tok::Punct(']') => depth += 1,
                    Tok::Punct('(') | Tok::Punct('[') => depth -= 1,
                    Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') if depth <= 0 => {
                        s += 1;
                        break;
                    }
                    _ => {}
                }
            }
            let used = (s..i).any(|k| {
                matches!(
                    fword(flat, k),
                    Some("let") | Some("return") | Some("if") | Some("while")
                        | Some("match")
                ) || fpunct(flat, k, '=')
            });
            if !used {
                for k in s..i {
                    if let Some(callee) = resolves_to_fallible(flat, k, graph) {
                        hit(
                            flat[i + 1].1 + 1,
                            format!(
                                "statement-final `.ok()` swallows the `Result` of \
                                 `{callee}`; handle or propagate it, or justify \
                                 with allow(swallowed-error)"
                            ),
                        );
                        break;
                    }
                }
            }
        }
        i += 1;
    }
}

/// Window (in flat tokens) within which a preceding `get_or_insert_with`
/// marks a registration call as the lazy idiom.
const LAZY_WINDOW: usize = 40;

/// R7 sites: `.counter(` / `.gauge(` / `.histogram(` resolving to
/// `MetricRegistry`, outside the lazy-registration idiom.
fn metric_sites(
    flat: &[FTok],
    b0: usize,
    b1: usize,
    graph: &Graph,
    mut hit: impl FnMut(usize, String),
) {
    // Baseline exemption: a body that calls `MetricRegistry::new()` is
    // *establishing* the instrument set of a fresh registry — there are no
    // pre-existing snapshots its registrations could widen. The hazard R7
    // polices is a later-added constructor registering into a registry
    // that already has committed digest baselines.
    let owns_registry = (b0..b1.min(flat.len())).any(|k| {
        fword(flat, k) == Some("MetricRegistry")
            && fpunct(flat, k + 1, ':')
            && fpunct(flat, k + 2, ':')
            && fword(flat, k + 3) == Some("new")
    });
    if owns_registry {
        return;
    }
    for i in b0..b1.min(flat.len()) {
        let Some(w) = fword(flat, i) else { continue };
        if !matches!(w, "counter" | "gauge" | "histogram") {
            continue;
        }
        if !(fpunct(flat, i + 1, '(')
            && i > 0
            && (fpunct(flat, i - 1, '.')
                || (i >= 3 && fpunct(flat, i - 1, ':') && fpunct(flat, i - 2, ':'))))
        {
            continue;
        }
        let is_registration = graph
            .named(w)
            .iter()
            .any(|&t| graph.nodes[t].item.qual == "MetricRegistry");
        if !is_registration {
            continue;
        }
        let lazy = (b0.max(i.saturating_sub(LAZY_WINDOW))..i)
            .any(|k| fword(flat, k) == Some("get_or_insert_with"));
        if !lazy {
            hit(flat[i].1 + 1, w.to_string());
        }
    }
}

/// Analyze from on-disk files (as the CLI does): read every path under
/// `root`, strip the root prefix for labels.
pub fn analyze_files(root: &Path, paths: &[std::path::PathBuf]) -> std::io::Result<Analysis> {
    let mut files = Vec::new();
    for p in paths {
        let source = std::fs::read_to_string(p)?;
        let label = p
            .strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/");
        files.push((label, source));
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(analyze(&files))
}
