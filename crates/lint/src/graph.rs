//! The workspace call graph: name-wise resolution of call sites into
//! edges between `fn` items, plus deterministic BFS reachability with
//! parent pointers (for `--explain` call chains).
//!
//! Resolution is receiver-ignorant by design: a method call `x.foo(...)`
//! links to *every* non-test library `fn foo`. That over-approximates —
//! which is the correct direction for a coverage gate (a spurious edge can
//! only widen the enforced set, never silently shrink it). `Qual::foo`
//! path calls are narrowed to items whose enclosing `impl`/`mod` matches
//! `Qual` when any exist.

use crate::items::{CallKind, FileItems, FnItem};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// What role a file plays in the workspace. Only `Lib` functions are graph
/// nodes: binaries and integration tests may freely define helpers whose
/// names collide with library items, and neither ships on the recoverable
/// or digest path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FileRole {
    Lib,
    Bin,
    Test,
}

/// Classify a workspace-relative path (with `/` separators).
pub(crate) fn file_role(path: &str) -> FileRole {
    if path.contains("/tests/") || path.starts_with("tests/") {
        FileRole::Test
    } else if path.contains("/bin/")
        || path.ends_with("/main.rs")
        || path == "main.rs"
        || path.contains("/examples/")
        || path.starts_with("examples/")
    {
        FileRole::Bin
    } else {
        FileRole::Lib
    }
}

/// One graph node: a library `fn` with its home file.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) file: String,
    pub(crate) item: FnItem,
}

/// The resolved workspace call graph over library (non-`cfg(test)`) fns.
pub(crate) struct Graph {
    pub(crate) nodes: Vec<Node>,
    /// Forward edges `caller -> callees`, deduped, ascending.
    pub(crate) edges: Vec<Vec<usize>>,
    /// Reverse edges `callee -> callers`, deduped, ascending.
    pub(crate) redges: Vec<Vec<usize>>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl Graph {
    /// Build the graph from per-file item extractions. `files` must be in
    /// deterministic (sorted-path) order; node indices follow it.
    pub(crate) fn build(files: &[(String, FileItems)]) -> Graph {
        let mut nodes = Vec::new();
        for (path, items) in files {
            if file_role(path) != FileRole::Lib {
                continue;
            }
            for f in &items.fns {
                if f.is_test {
                    continue;
                }
                nodes.push(Node {
                    file: path.clone(),
                    item: f.clone(),
                });
            }
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (idx, n) in nodes.iter().enumerate() {
            by_name.entry(n.item.name.clone()).or_default().push(idx);
        }
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut redges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for caller in 0..nodes.len() {
            let mut targets = BTreeSet::new();
            for call in &nodes[caller].item.calls {
                let Some(cands) = by_name.get(&call.name) else {
                    continue;
                };
                match call.kind {
                    CallKind::Path => {
                        // Narrow to the named qual when that matches
                        // anything; otherwise keep every candidate (the
                        // qual may be a module alias we can't see).
                        let narrowed: Vec<usize> = cands
                            .iter()
                            .copied()
                            .filter(|&t| {
                                Some(nodes[t].item.qual.as_str())
                                    == call.qual.as_deref()
                            })
                            .collect();
                        if narrowed.is_empty() {
                            targets.extend(cands.iter().copied());
                        } else {
                            targets.extend(narrowed);
                        }
                    }
                    CallKind::Method | CallKind::Free => {
                        targets.extend(cands.iter().copied());
                    }
                }
            }
            targets.remove(&caller); // Self-loops add nothing.
            for t in targets {
                edges[caller].push(t);
                redges[t].push(caller);
            }
        }
        Graph {
            nodes,
            edges,
            redges,
            by_name,
        }
    }

    /// Indices of every node named `name`.
    pub(crate) fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// BFS over `edges` (or `redges` when `reverse`) from `seeds`.
    /// Returns, for each node, `Some(parent)` mapping discovered nodes to
    /// the node they were first reached from (seeds map to themselves).
    /// Deterministic: seeds are visited in ascending index order and
    /// adjacency lists are ascending.
    pub(crate) fn reach(
        &self,
        seeds: &BTreeSet<usize>,
        reverse: bool,
    ) -> Vec<Option<usize>> {
        let adj = if reverse { &self.redges } else { &self.edges };
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut q = VecDeque::new();
        for &s in seeds {
            parent[s] = Some(s);
            q.push_back(s);
        }
        while let Some(u) = q.pop_front() {
            for &v in &adj[u] {
                if parent[v].is_none() {
                    parent[v] = Some(u);
                    q.push_back(v);
                }
            }
        }
        parent
    }

    /// The seed-to-`node` call chain implied by BFS `parent` pointers,
    /// rendered one `qual::name (file:line)` hop per entry, seed first.
    pub(crate) fn chain(&self, parent: &[Option<usize>], node: usize) -> Vec<String> {
        let mut hops = Vec::new();
        let mut cur = node;
        let mut steps = 0;
        while let Some(p) = parent[cur] {
            hops.push(self.label(cur));
            if p == cur || steps > self.nodes.len() {
                break;
            }
            cur = p;
            steps += 1;
        }
        hops.reverse();
        hops
    }

    /// `qual::name (file:line)` for one node.
    pub(crate) fn label(&self, idx: usize) -> String {
        let n = &self.nodes[idx];
        let q = if n.item.qual.is_empty() {
            String::new()
        } else {
            format!("{}::", n.item.qual)
        };
        format!("{q}{} ({}:{})", n.item.name, n.file, n.item.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::scan::prepare;

    fn build(files: &[(&str, &str)]) -> Graph {
        let items: Vec<(String, FileItems)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), extract(&prepare(s))))
            .collect();
        Graph::build(&items)
    }

    #[test]
    fn cross_file_free_calls_resolve() {
        let g = build(&[
            ("crates/a/src/lib.rs", "pub fn entry() { helper(); }\n"),
            ("crates/b/src/util.rs", "pub fn helper() {}\n"),
        ]);
        let entry = g.named("entry")[0];
        let helper = g.named("helper")[0];
        assert_eq!(g.edges[entry], vec![helper]);
        assert_eq!(g.redges[helper], vec![entry]);
    }

    #[test]
    fn qual_narrows_path_calls() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "impl Pool { pub fn new() -> Pool { Pool } }\n\
             impl Fabric { pub fn new() -> Fabric { Fabric } }\n\
             pub fn make() { Pool::new(); }\n",
        )]);
        let make = g.named("make")[0];
        assert_eq!(g.edges[make].len(), 1);
        assert_eq!(g.nodes[g.edges[make][0]].item.qual, "Pool");
    }

    #[test]
    fn method_calls_fan_out_to_all_names() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "impl A { pub fn step(&self) {} }\n\
             impl B { pub fn step(&self) {} }\n\
             pub fn tick(x: &A) { x.step(); }\n",
        )]);
        let tick = g.named("tick")[0];
        assert_eq!(g.edges[tick].len(), 2);
    }

    #[test]
    fn test_and_bin_fns_are_not_nodes() {
        let g = build(&[
            ("crates/a/src/lib.rs", "pub fn real() {}\n"),
            ("crates/a/tests/it.rs", "fn real() {}\nfn driver() { real(); }\n"),
            ("crates/a/src/bin/tool.rs", "fn main() { real(); }\n"),
        ]);
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.named("real").len(), 1);
        assert!(g.named("driver").is_empty());
        assert!(g.named("main").is_empty());
    }

    #[test]
    fn bfs_chain_reports_seed_first() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "pub fn seed() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n",
        )]);
        let seed = g.named("seed")[0];
        let leaf = g.named("leaf")[0];
        let mut seeds = BTreeSet::new();
        seeds.insert(seed);
        let parent = g.reach(&seeds, false);
        assert!(parent[leaf].is_some());
        let chain = g.chain(&parent, leaf);
        assert_eq!(chain.len(), 3);
        assert!(chain[0].starts_with("seed"));
        assert!(chain[2].starts_with("leaf"));
    }
}
