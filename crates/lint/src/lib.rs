// Tests may unwrap/expect freely; production code must not (see crates/lint).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! `lmp-lint`: the workspace determinism-and-atomicity gate.
//!
//! The repo's correctness story — byte-stable [`TelemetrySnapshot`] JSON,
//! FNV trace digests in every chaos scenario, batch/single equivalence
//! proptests — rests on invariants that used to be tribal knowledge. This
//! crate machine-checks them as a CI gate:
//!
//! * **R1 `wall-clock`** — no `SystemTime`, `Instant::now`, or
//!   `thread_rng` anywhere in workspace source. All time is sim-time, all
//!   randomness is seeded; a single wall-clock read makes every digest
//!   unreproducible.
//! * **R2 `unordered-iter`** — no iteration (`.iter()`, `.values()`,
//!   `.keys()`, `.drain()`, `.retain()`, `for … in`) over `HashMap` /
//!   `HashSet` in files that construct snapshots, digests, fault plans, or
//!   migration/balancing decisions. Those structures must be `BTreeMap` /
//!   `BTreeSet`, or sorted before use.
//! * **R3 `no-panic`** — no `unwrap()` / `expect()` / `panic!` /
//!   `assert!` family in the designated *recoverable* modules outside
//!   `#[cfg(test)]`: recoverable pool/fabric paths must return
//!   `PoolError` / `FabricError`.
//! * **R4 `unchecked-arith`** — no bare `+` / `-` / `*` on designated
//!   bounds/translation files; offsets and lengths must use `checked_*` /
//!   `saturating_*` arithmetic.
//! * **R5 suppressions** — `// lmp-lint: allow(<rule>) — <justification>`
//!   silences one rule on one line. A suppression without a justification
//!   (`bare-allow`) or that suppresses nothing (`unused-allow`) is itself
//!   an error, so allows cannot rot.
//!
//! The implementation is a line-oriented token scanner, not a parser: it
//! blanks comments and string/char literals, tracks `#[cfg(test)]` brace
//! regions, and matches word-boundary tokens. No `syn`, no proc-macro
//! stack — the tool stays buildable offline against the vendored `shims/`.
//!
//! [`TelemetrySnapshot`]: ../lmp_telemetry/struct.TelemetrySnapshot.html

mod scan;

pub use scan::{scan_source, FileClass, Finding, Rule};

use std::path::{Path, PathBuf};

/// Files whose map/set iteration feeds snapshots, digests, fault plans, or
/// migration/balancing decisions (rule R2). Matched as path suffixes with
/// `/` separators.
pub const R2_DIGEST_PATH_FILES: &[&str] = &[
    // Snapshot & digest construction.
    "crates/telemetry/src/registry.rs",
    "crates/telemetry/src/snapshot.rs",
    "crates/telemetry/src/span.rs",
    "crates/harness/src/trace.rs",
    "crates/harness/src/invariants.rs",
    "crates/harness/src/scenario.rs",
    // Fault plans.
    "crates/harness/src/plan.rs",
    // Migration / balancing / sizing decisions and their inputs.
    "crates/core/src/balance.rs",
    "crates/core/src/migrate.rs",
    "crates/core/src/controller.rs",
    "crates/core/src/sizing.rs",
    "crates/core/src/observe.rs",
    "crates/core/src/translate.rs",
    "crates/core/src/pool.rs",
    "crates/core/src/failure.rs",
    "crates/core/src/heal.rs",
    "crates/core/src/health.rs",
    "crates/core/src/share.rs",
    "crates/core/src/placement.rs",
    "crates/mem/src/hotness.rs",
    "crates/mem/src/node.rs",
    // Exporters that feed the rack snapshot.
    "crates/fabric/src/fabric.rs",
    "crates/fabric/src/link.rs",
    "crates/fabric/src/datacenter.rs",
    "crates/coherence/src/region.rs",
    "crates/coherence/src/directory.rs",
    "crates/coherence/src/filter.rs",
    // Deterministic event ordering.
    "crates/sim/src/queue.rs",
    "crates/sim/src/calendar.rs",
    // QoS decisions: admission verdicts, band service order, and hedge
    // deadlines all feed digest-bearing traces.
    "crates/qos/src/admit.rs",
    "crates/qos/src/band.rs",
    "crates/core/src/hedge.rs",
    // Pushdown planning: per-segment ship-vs-fetch choices and holder
    // grouping feed the bench digests; iteration order must be stable.
    "crates/compute/src/ship.rs",
    "crates/compute/src/scan.rs",
    "crates/compute/src/planner.rs",
    "crates/compute/src/operator.rs",
];

/// Recoverable modules (rule R3): crash, fault-injection, and migration
/// paths where a panic would turn an injected fault into a process abort.
/// Errors must surface as `PoolError` / `FabricError` instead.
pub const R3_RECOVERABLE_FILES: &[&str] = &[
    "crates/core/src/pool.rs",
    "crates/core/src/failure.rs",
    "crates/core/src/heal.rs",
    "crates/core/src/migrate.rs",
    // Placement decisions run inside recovery: a panic here turns a
    // survivable rack loss into a process abort.
    "crates/core/src/placement.rs",
    "crates/fabric/src/fabric.rs",
    "crates/fabric/src/link.rs",
    "crates/fabric/src/datacenter.rs",
    "crates/mem/src/node.rs",
    // QoS runs on the access path: a panic in admission, band service,
    // or hedging turns one tenant's flood into a rack-wide abort.
    "crates/qos/src/admit.rs",
    "crates/qos/src/band.rs",
    "crates/core/src/hedge.rs",
    // The event kernel: a panic mid-scan would take down every scenario,
    // and `schedule_at` now surfaces past-scheduling as a typed error.
    "crates/sim/src/calendar.rs",
    "crates/sim/src/engine.rs",
    // Compute shipping runs against live holders mid-migration: a panic
    // would turn a survivable relocation into a failed query.
    "crates/compute/src/ship.rs",
    "crates/compute/src/scan.rs",
    "crates/compute/src/planner.rs",
    "crates/compute/src/operator.rs",
];

/// Bounds/translation arithmetic files (rule R4): every `+`/`-`/`*` on an
/// offset or length here must be `checked_*`/`saturating_*` — a wrap in
/// these files is exactly the PR-4 `check_bounds` overflow class.
pub const R4_ARITH_FILES: &[&str] = &[
    "crates/core/src/addr.rs",
    "crates/mem/src/frame.rs",
];

/// Classify `path` (any separator style) against the designated-file lists.
pub fn classify(path: &Path) -> FileClass {
    let p = path.to_string_lossy().replace('\\', "/");
    let suffix_match = |list: &[&str]| {
        list.iter().any(|f| {
            p.ends_with(f)
                // Also accept scanning from inside the workspace root
                // ("crates/core/src/pool.rs" given as the whole path).
                || p == *f
        })
    };
    FileClass {
        digest_path: suffix_match(R2_DIGEST_PATH_FILES),
        recoverable: suffix_match(R3_RECOVERABLE_FILES),
        arith_path: suffix_match(R4_ARITH_FILES),
    }
}

/// Walk the workspace rooted at `root` and return every `.rs` file the
/// gate covers, sorted for deterministic output. Vendored shims, build
/// output, and lint fixtures (intentional violations) are excluded.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan one on-disk file with its path-derived classification.
pub fn scan_path(root: &Path, path: &Path) -> std::io::Result<Vec<Finding>> {
    let source = std::fs::read_to_string(path)?;
    let label = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    Ok(scan_source(&label, &source, classify(path)))
}

/// Render findings as the machine-readable JSON the CI job consumes.
/// Hand-rolled (no serde) so the gate has zero dependencies.
pub fn to_json(findings: &[Finding]) -> String {
    let mut s = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.rule.name(),
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        s.push('\n');
    }
    s.push(']');
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
