// Tests may unwrap/expect freely; production code must not (see crates/lint).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! `lmp-lint`: the workspace determinism-and-atomicity gate.
//!
//! The repo's correctness story — byte-stable [`TelemetrySnapshot`] JSON,
//! FNV trace digests in every chaos scenario, batch/single equivalence
//! proptests — rests on invariants that used to be tribal knowledge. This
//! crate machine-checks them as a CI gate:
//!
//! * **R1 `wall-clock`** — no `SystemTime`, `Instant::now`, or
//!   `thread_rng` anywhere in workspace source. All time is sim-time, all
//!   randomness is seeded; a single wall-clock read makes every digest
//!   unreproducible.
//! * **R2 `unordered-iter`** — no iteration (`.iter()`, `.values()`,
//!   `.keys()`, `.drain()`, `.retain()`, `for … in`) over `HashMap` /
//!   `HashSet` in functions on the *digest-tainted* set: anything that
//!   transitively constructs or feeds snapshots, digests, fault plans, or
//!   migration/balancing decisions. The set is **inferred from the call
//!   graph** (see [`reach`]), not hand-listed.
//! * **R3 `no-panic`** — no `unwrap()` / `expect()` / `panic!` /
//!   `assert!` family in any function *reachable from a recoverable
//!   seed*: public fns returning `Result<_, E>` for a workspace error
//!   type, the sim `Engine` dispatch surface, and recovery orchestration
//!   entry points. Reachability is inferred; findings carry the full
//!   seed-to-site call chain (`--explain`).
//! * **R4 `unchecked-arith`** — no bare `+` / `-` / `*` on designated
//!   bounds/translation files; offsets and lengths must use `checked_*` /
//!   `saturating_*` arithmetic.
//! * **R5 suppressions** — `// lmp-lint: allow(<rule>) — <justification>`
//!   silences one rule on one line. A suppression without a justification
//!   (`bare-allow`) or that suppresses nothing (`unused-allow`) is itself
//!   an error, so allows cannot rot.
//! * **R6 `swallowed-error`** — `let _ = <fallible call>` or a bare
//!   statement ending in `.ok()` that discards a `Result` produced by a
//!   workspace function. Recoverable paths only work if errors *surface*.
//! * **R7 `eager-metric`** — metric registration (`counter` / `gauge` /
//!   `histogram` on the `MetricRegistry`) on a path reachable from a
//!   constructor must use the lazy `Option<…Id>` + `get_or_insert_with`
//!   idiom; eager registration widens every pre-existing snapshot and
//!   breaks the committed digest baselines.
//!
//! The implementation is a token scanner plus a name-resolved call graph,
//! not a parser: it blanks comments and string/char literals, tracks
//! `#[cfg(test)]` brace regions, extracts `fn` items and call edges, and
//! runs BFS reachability. No `syn`, no proc-macro stack — the tool stays
//! buildable offline against the vendored `shims/`.
//!
//! R2/R3 used to be driven by hand-maintained file lists that every PR
//! had to extend — a forgotten enrollment was a *silent* coverage gap.
//! The lists survive only as [`transition`] baselines: CI asserts the
//! inferred sets are supersets of them, so inference can never regress
//! below the coverage the lists had.
//!
//! [`TelemetrySnapshot`]: ../lmp_telemetry/struct.TelemetrySnapshot.html

mod graph;
mod items;
mod reach;
mod scan;

pub use reach::{analyze, analyze_files, Analysis};
pub use scan::{scan_source, FileClass, Finding, Rule};

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// The frozen hand-maintained R2/R3 file lists the call-graph analysis
/// replaced. They are **not** consulted for classification any more; they
/// exist only as the transition baseline: [`check_superset`] (run in CI)
/// fails if the inferred sets ever stop covering them.
pub mod transition {
    /// Last hand-maintained R2 (digest-path) list, frozen at PR 9.
    pub const LEGACY_R2_FILES: &[&str] = &[
        // Snapshot & digest construction.
        "crates/telemetry/src/registry.rs",
        "crates/telemetry/src/snapshot.rs",
        "crates/telemetry/src/span.rs",
        "crates/harness/src/trace.rs",
        "crates/harness/src/invariants.rs",
        "crates/harness/src/scenario.rs",
        // Fault plans.
        "crates/harness/src/plan.rs",
        // Migration / balancing / sizing decisions and their inputs.
        "crates/core/src/balance.rs",
        "crates/core/src/migrate.rs",
        "crates/core/src/controller.rs",
        "crates/core/src/sizing.rs",
        "crates/core/src/observe.rs",
        "crates/core/src/translate.rs",
        "crates/core/src/pool.rs",
        "crates/core/src/failure.rs",
        "crates/core/src/heal.rs",
        "crates/core/src/health.rs",
        "crates/core/src/share.rs",
        "crates/core/src/placement.rs",
        "crates/mem/src/hotness.rs",
        "crates/mem/src/node.rs",
        // Exporters that feed the rack snapshot.
        "crates/fabric/src/fabric.rs",
        "crates/fabric/src/link.rs",
        "crates/fabric/src/datacenter.rs",
        "crates/coherence/src/region.rs",
        "crates/coherence/src/directory.rs",
        "crates/coherence/src/filter.rs",
        // Deterministic event ordering.
        "crates/sim/src/queue.rs",
        "crates/sim/src/calendar.rs",
        // QoS decisions: admission verdicts, band service order, and hedge
        // deadlines all feed digest-bearing traces.
        "crates/qos/src/admit.rs",
        "crates/qos/src/band.rs",
        "crates/core/src/hedge.rs",
        // Pushdown planning: per-segment ship-vs-fetch choices and holder
        // grouping feed the bench digests; iteration order must be stable.
        "crates/compute/src/ship.rs",
        "crates/compute/src/scan.rs",
        "crates/compute/src/planner.rs",
        "crates/compute/src/operator.rs",
    ];

    /// Last hand-maintained R3 (recoverable-module) list, frozen at PR 9.
    pub const LEGACY_R3_FILES: &[&str] = &[
        "crates/core/src/pool.rs",
        "crates/core/src/failure.rs",
        "crates/core/src/heal.rs",
        "crates/core/src/migrate.rs",
        "crates/core/src/placement.rs",
        "crates/fabric/src/fabric.rs",
        "crates/fabric/src/link.rs",
        "crates/fabric/src/datacenter.rs",
        "crates/mem/src/node.rs",
        "crates/qos/src/admit.rs",
        "crates/qos/src/band.rs",
        "crates/core/src/hedge.rs",
        "crates/sim/src/calendar.rs",
        "crates/sim/src/engine.rs",
        "crates/compute/src/ship.rs",
        "crates/compute/src/scan.rs",
        "crates/compute/src/planner.rs",
        "crates/compute/src/operator.rs",
    ];
}

/// Bounds/translation arithmetic files (rule R4): every `+`/`-`/`*` on an
/// offset or length here must be `checked_*`/`saturating_*` — a wrap in
/// these files is exactly the PR-4 `check_bounds` overflow class. R4 stays
/// a designated-file rule: "is this arithmetic an address computation?" is
/// a semantic property no call graph can infer.
pub const R4_ARITH_FILES: &[&str] = &[
    "crates/core/src/addr.rs",
    "crates/mem/src/frame.rs",
];

/// Classify `path` (any separator style) for the file-local rules. Since
/// the call-graph analysis took over R2/R3 scoping, only the R4 arith
/// designation remains path-driven.
pub fn classify(path: &Path) -> FileClass {
    let p = path.to_string_lossy().replace('\\', "/");
    let suffix_match = |list: &[&str]| list.iter().any(|f| p.ends_with(f) || p == *f);
    FileClass {
        digest_path: false,
        recoverable: false,
        arith_path: suffix_match(R4_ARITH_FILES),
    }
}

/// Check the transition superset gate: every file on the legacy R2/R3
/// lists must be covered by the inferred sets. Returns the violations
/// (empty means the gate passes).
pub fn check_superset(analysis: &Analysis) -> Vec<String> {
    let covered = |set: &BTreeSet<String>, legacy: &str| {
        set.iter().any(|f| f.ends_with(legacy) || f == legacy)
    };
    let mut missing = Vec::new();
    for f in transition::LEGACY_R2_FILES {
        if !covered(&analysis.r2_files, f) {
            missing.push(format!("R2 coverage lost: {f} (was on the hand list)"));
        }
    }
    for f in transition::LEGACY_R3_FILES {
        if !covered(&analysis.r3_files, f) {
            missing.push(format!("R3 coverage lost: {f} (was on the hand list)"));
        }
    }
    missing
}

/// Walk the workspace rooted at `root` and return every `.rs` file the
/// gate covers, sorted for deterministic output. Vendored shims, build
/// output, and lint fixtures (intentional violations) are excluded.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan one on-disk file with its path-derived classification. Single-file
/// mode runs the file-local rules only (R1, R4, R5); the graph rules need
/// `--workspace`.
pub fn scan_path(root: &Path, path: &Path) -> std::io::Result<Vec<Finding>> {
    let source = std::fs::read_to_string(path)?;
    let label = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    Ok(scan_source(&label, &source, classify(path)))
}

/// Render findings as the machine-readable JSON the CI job consumes.
/// Hand-rolled (no serde) so the gate has zero dependencies.
pub fn to_json(findings: &[Finding]) -> String {
    let mut s = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let mut chain = String::from("[");
        for (j, hop) in f.chain.iter().enumerate() {
            if j > 0 {
                chain.push(',');
            }
            chain.push('"');
            chain.push_str(&json_escape(hop));
            chain.push('"');
        }
        chain.push(']');
        s.push_str(&format!(
            "\n  {{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\",\"chain\":{}}}",
            json_escape(&f.file),
            f.line,
            f.rule.name(),
            json_escape(&f.message),
            chain
        ));
    }
    if !findings.is_empty() {
        s.push('\n');
    }
    s.push(']');
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
