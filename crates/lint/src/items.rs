//! The item model: per-file `fn` extraction over the blanked token stream.
//!
//! This is deliberately *not* a parser. It walks the flat token stream
//! `scan::prepare` produces, tracks brace depth and the enclosing
//! `impl`/`mod`/`trait` scope, and records for every `fn` item its name,
//! qualifier, visibility, `#[cfg(test)]` status, parameter/return-type
//! words, body token range, and the call/method-call sites inside the
//! body. The `graph` module resolves those sites name-wise across the
//! workspace.

use crate::scan::{fpunct, fword, word, FTok, Prepared, Tok};
use std::collections::BTreeSet;

/// How a call site is written at the call point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CallKind {
    /// `foo(...)` — a free-function call.
    Free,
    /// `recv.foo(...)` — a method call; the receiver type is unknown.
    Method,
    /// `Qual::foo(...)` — a path call; `qual` narrows resolution.
    Path,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub(crate) struct CallSite {
    pub(crate) name: String,
    /// The `Qual` in `Qual::foo(...)`, when present.
    pub(crate) qual: Option<String>,
    pub(crate) kind: CallKind,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub(crate) struct FnItem {
    pub(crate) name: String,
    /// Enclosing `impl Type` / `trait Type` / `mod name` (innermost), or
    /// empty at top level.
    pub(crate) qual: String,
    /// 1-indexed line of the `fn` keyword.
    pub(crate) line: usize,
    pub(crate) is_pub: bool,
    /// Inside a `#[cfg(test)]` region.
    pub(crate) is_test: bool,
    /// Word tokens of the parameter list (types and names alike).
    pub(crate) params: Vec<String>,
    /// Word tokens of the return type (empty for `()`-returning fns).
    pub(crate) ret: Vec<String>,
    /// Flat-token index range of the body, exclusive end; `None` for
    /// bodyless trait-method declarations.
    pub(crate) body: Option<(usize, usize)>,
    /// Call sites inside the body, in source order.
    pub(crate) calls: Vec<CallSite>,
    /// Uppercase-initial words mentioned in the body — struct literals,
    /// path heads, enum variants. Used for taint-sink matching.
    pub(crate) mentions: BTreeSet<String>,
}

/// Everything the graph layers need from one file.
#[derive(Debug, Default)]
pub(crate) struct FileItems {
    pub(crate) fns: Vec<FnItem>,
    /// `struct`/`enum` type names declared in this file (test regions
    /// excluded). Used to infer the workspace error-type universe.
    pub(crate) type_decls: BTreeSet<String>,
}

const KEYWORDS_NOT_CALLS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let",
    "move", "in", "as", "ref", "mut", "box", "await", "unsafe", "where",
];

/// Skip a balanced `<...>` generics region starting at the `<` at `i`;
/// returns the index just past the matching `>`. A `>` directly preceded
/// by `-` is an arrow inside an `Fn(...) -> T` bound, not a closer.
fn skip_generics(flat: &[FTok], mut i: usize) -> usize {
    debug_assert!(fpunct(flat, i, '<'));
    let mut depth = 0usize;
    while i < flat.len() {
        match &flat[i].0 {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => {
                if i > 0 && fpunct(flat, i - 1, '-') {
                    // `->` arrow inside the bound — not a closer.
                } else {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
            }
            // A generics list never contains braces or semicolons; bail
            // out rather than swallow the rest of the file on confusion.
            Tok::Punct('{') | Tok::Punct('}') | Tok::Punct(';') => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Skip a balanced `(...)` region starting at the `(` at `i`; returns the
/// index just past the matching `)`.
fn skip_parens(flat: &[FTok], mut i: usize) -> usize {
    debug_assert!(fpunct(flat, i, '('));
    let mut depth = 0usize;
    while i < flat.len() {
        match &flat[i].0 {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Find the flat index just past the `}` matching the `{` at `i`.
fn skip_braces(flat: &[FTok], mut i: usize) -> usize {
    debug_assert!(fpunct(flat, i, '{'));
    let mut depth = 0usize;
    while i < flat.len() {
        match &flat[i].0 {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Extract the items of one prepared file.
pub(crate) fn extract(p: &Prepared) -> FileItems {
    let flat = &p.flat;
    let mut out = FileItems::default();

    // Scope stack: (brace depth at which the scope closes, qualifier).
    let mut depth = 0usize;
    let mut scopes: Vec<(usize, String)> = Vec::new();
    let mut i = 0usize;
    while i < flat.len() {
        match &flat[i].0 {
            Tok::Punct('{') => {
                depth += 1;
                i += 1;
            }
            Tok::Punct('}') => {
                if scopes.last().map(|(d, _)| *d) == Some(depth) {
                    scopes.pop();
                }
                depth = depth.saturating_sub(1);
                i += 1;
            }
            Tok::Word(w) if w == "impl" || w == "mod" || w == "trait" => {
                // Capture the qualifier: for `impl Trait for Type` the word
                // after `for`; otherwise the first type word after the
                // keyword (generics skipped).
                let mut j = i + 1;
                if fpunct(flat, j, '<') {
                    j = skip_generics(flat, j);
                }
                let mut qual = String::new();
                let mut saw_for = false;
                while j < flat.len() {
                    match &flat[j].0 {
                        Tok::Punct('{') => break,
                        Tok::Punct(';') => break, // `mod name;`
                        Tok::Word(t) if t == "for" => {
                            saw_for = true;
                            qual.clear();
                        }
                        // Path prefixes and pointer-ness never name the
                        // scope; wait for the real type word.
                        Tok::Word(t)
                            if (qual.is_empty() || saw_for)
                                && !matches!(
                                    t.as_str(),
                                    "dyn" | "mut" | "crate" | "super" | "self"
                                ) =>
                        {
                            qual = t.clone();
                            saw_for = false;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if j < flat.len() && fpunct(flat, j, '{') {
                    // The scope closes when depth drops back below this.
                    scopes.push((depth + 1, qual));
                }
                i = j; // The `{`/`;` is re-handled by the outer loop.
            }
            Tok::Word(w) if w == "struct" || w == "enum" => {
                if let Some(name) = fword(flat, i + 1) {
                    if !p.in_test[flat[i + 1].1] {
                        out.type_decls.insert(name.to_string());
                    }
                }
                i += 1;
            }
            Tok::Word(w) if w == "fn" => {
                let Some(name) = fword(flat, i + 1) else {
                    i += 1;
                    continue;
                };
                let fn_line_idx = flat[i].1;
                // Visibility: `pub` / `pub(crate)` within the few tokens
                // before `fn` (possibly with `const`/`async`/`unsafe`).
                let mut is_pub = false;
                {
                    let mut k = i;
                    let mut steps = 0;
                    while k > 0 && steps < 8 {
                        k -= 1;
                        steps += 1;
                        match &flat[k].0 {
                            Tok::Word(t) if t == "pub" => {
                                is_pub = true;
                                break;
                            }
                            Tok::Word(t)
                                if t == "const"
                                    || t == "async"
                                    || t == "unsafe"
                                    || t == "extern"
                                    || t == "crate"
                                    || t == "super" => {}
                            Tok::Punct('(') | Tok::Punct(')') => {}
                            _ => break,
                        }
                    }
                }
                let mut j = i + 2;
                if fpunct(flat, j, '<') {
                    j = skip_generics(flat, j);
                }
                // Parameter list.
                let mut params = Vec::new();
                if fpunct(flat, j, '(') {
                    let end = skip_parens(flat, j);
                    for t in &flat[j + 1..end.saturating_sub(1)] {
                        if let Some(w) = word(&t.0) {
                            params.push(w.to_string());
                        }
                    }
                    j = end;
                }
                // Return type: words after `->` until `{`, `;`, or a
                // `where` clause at nesting depth 0.
                let mut ret = Vec::new();
                if fpunct(flat, j, '-') && fpunct(flat, j + 1, '>') {
                    j += 2;
                    let mut angle = 0i64;
                    let mut paren = 0i64;
                    while j < flat.len() {
                        match &flat[j].0 {
                            Tok::Punct('<') => angle += 1,
                            Tok::Punct('>') if !fpunct(flat, j - 1, '-') => angle -= 1,
                            Tok::Punct('(') => paren += 1,
                            Tok::Punct(')') => paren -= 1,
                            Tok::Punct('{') | Tok::Punct(';') if angle <= 0 && paren <= 0 => break,
                            Tok::Word(t) if t == "where" && angle <= 0 && paren <= 0 => break,
                            Tok::Word(t) => ret.push(t.clone()),
                            _ => {}
                        }
                        j += 1;
                    }
                }
                // Where clause: skip to the body `{` or decl `;`.
                while j < flat.len()
                    && !fpunct(flat, j, '{')
                    && !fpunct(flat, j, ';')
                {
                    if fpunct(flat, j, '<') {
                        j = skip_generics(flat, j);
                    } else {
                        j += 1;
                    }
                }
                let mut item = FnItem {
                    name: name.to_string(),
                    qual: scopes.last().map(|(_, q)| q.clone()).unwrap_or_default(),
                    line: fn_line_idx + 1,
                    is_pub,
                    is_test: p.in_test[fn_line_idx],
                    params,
                    ret,
                    body: None,
                    calls: Vec::new(),
                    mentions: BTreeSet::new(),
                };
                if j < flat.len() && fpunct(flat, j, '{') {
                    let end = skip_braces(flat, j);
                    item.body = Some((j, end));
                    collect_calls(flat, j, end, &mut item);
                    i = end;
                } else {
                    i = j.max(i + 1);
                }
                out.fns.push(item);
            }
            _ => {
                i += 1;
            }
        }
    }
    out
}

/// Collect call sites and uppercase mentions in `flat[start..end]`.
fn collect_calls(flat: &[FTok], start: usize, end: usize, item: &mut FnItem) {
    for i in start..end.min(flat.len()) {
        let Some(w) = fword(flat, i) else { continue };
        if w.starts_with(char::is_uppercase) {
            item.mentions.insert(w.to_string());
        }
        if !fpunct(flat, i + 1, '(') {
            continue;
        }
        if KEYWORDS_NOT_CALLS.contains(&w) {
            continue;
        }
        // Macro invocation `w!(` is not a call; `fn w(` is a definition
        // (nested item — its body is still part of this range, which is
        // what reachability wants).
        if i > 0 {
            if let Some(prev) = word(&flat[i - 1].0) {
                if prev == "fn" {
                    continue;
                }
            }
        }
        if i > 0 && fpunct(flat, i - 1, '!') {
            continue;
        }
        if i > 0 && fpunct(flat, i - 1, '.') {
            item.calls.push(CallSite {
                name: w.to_string(),
                qual: None,
                kind: CallKind::Method,
            });
        } else if i >= 3 && fpunct(flat, i - 1, ':') && fpunct(flat, i - 2, ':') {
            let qual = fword(flat, i - 3).map(|q| q.to_string());
            item.calls.push(CallSite {
                name: w.to_string(),
                qual,
                kind: CallKind::Path,
            });
        } else {
            item.calls.push(CallSite {
                name: w.to_string(),
                qual: None,
                kind: CallKind::Free,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::prepare;

    fn items(src: &str) -> FileItems {
        extract(&prepare(src))
    }

    #[test]
    fn extracts_name_qual_vis_and_ret() {
        let src = "impl Pool {\n    pub fn read(&self, a: Addr) -> Result<Frame, PoolError> {\n        self.translate(a)\n    }\n    fn translate(&self, a: Addr) -> Result<Frame, PoolError> { Err(PoolError::Fault) }\n}\n";
        let fi = items(src);
        assert_eq!(fi.fns.len(), 2);
        let read = &fi.fns[0];
        assert_eq!(read.name, "read");
        assert_eq!(read.qual, "Pool");
        assert!(read.is_pub);
        assert_eq!(read.ret, vec!["Result", "Frame", "PoolError"]);
        assert!(!fi.fns[1].is_pub);
    }

    #[test]
    fn impl_trait_for_type_quals_to_the_type() {
        let src = "impl Display for Frame {\n    fn fmt(&self) {}\n}\n";
        let fi = items(src);
        assert_eq!(fi.fns[0].qual, "Frame");
    }

    #[test]
    fn generic_bounds_arrow_does_not_break_signature_parse() {
        let src = "pub fn run_while<F: FnMut(u64) -> bool>(f: F) -> Result<u64, SchedulePastError> {\n    helper()\n}\nfn helper() -> Result<u64, SchedulePastError> { Ok(0) }\n";
        let fi = items(src);
        assert_eq!(fi.fns[0].name, "run_while");
        assert_eq!(
            fi.fns[0].ret,
            vec!["Result", "u64", "SchedulePastError"]
        );
        assert_eq!(fi.fns[0].calls.len(), 1);
        assert_eq!(fi.fns[0].calls[0].name, "helper");
    }

    #[test]
    fn call_kinds_are_distinguished() {
        let src = "fn f() {\n    free();\n    x.method();\n    Type::assoc();\n    mac!(ignored());\n}\n";
        let fi = items(src);
        let calls = &fi.fns[0].calls;
        // `ignored()` inside the macro body is still a call site (token
        // level), but `mac!(` itself is not.
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"free"));
        assert!(names.contains(&"method"));
        assert!(names.contains(&"assoc"));
        assert!(!names.contains(&"mac"));
        let assoc = calls.iter().find(|c| c.name == "assoc").unwrap();
        assert_eq!(assoc.kind, CallKind::Path);
        assert_eq!(assoc.qual.as_deref(), Some("Type"));
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let fi = items(src);
        assert!(!fi.fns[0].is_test);
        assert!(fi.fns[1].is_test);
        assert_eq!(fi.fns[1].qual, "tests");
    }

    #[test]
    fn type_decls_exclude_test_regions() {
        let src = "pub struct Pool;\npub enum PoolError { A }\n#[cfg(test)]\nmod tests {\n    struct Fake;\n}\n";
        let fi = items(src);
        assert!(fi.type_decls.contains("Pool"));
        assert!(fi.type_decls.contains("PoolError"));
        assert!(!fi.type_decls.contains("Fake"));
    }

    #[test]
    fn mentions_capture_struct_literals() {
        let src = "fn build() -> Plan {\n    TelemetrySnapshot { a: 1 };\n    FaultPlan::new()\n}\n";
        let fi = items(src);
        assert!(fi.fns[0].mentions.contains("TelemetrySnapshot"));
        assert!(fi.fns[0].mentions.contains("FaultPlan"));
    }
}
