//! A node's complete memory system.
//!
//! [`MemoryNode`] combines the frame split, DRAM timing, optional
//! materialized contents, and hotness telemetry. It models both a server's
//! local memory (private + shared regions) and — with an all-shared split —
//! a CXL Type-3 fabric-attached memory appliance
//! ([`MemoryNode::fam_device`]), so the logical and physical architectures
//! are built from the same substrate and differ only in configuration,
//! exactly the comparison the paper makes.

use crate::dram::{DramChannel, DramCompletion, DramProfile};
use crate::frame::{FrameId, FRAME_BYTES};
use crate::hotness::{AccessorId, HotnessMap};
use crate::region::{RegionError, RegionKind, RegionSplit};
use crate::store::FrameStore;
use lmp_sim::prelude::*;

/// A server's (or memory appliance's) memory system.
#[derive(Debug)]
pub struct MemoryNode {
    name: String,
    split: RegionSplit,
    dram: DramChannel,
    store: FrameStore,
    hotness: HotnessMap,
    local_accesses: Counter,
    remote_accesses: Counter,
    failed: bool,
}

impl MemoryNode {
    /// A node with `capacity_bytes` of DRAM, `shared_bytes` of which may be
    /// lent to the pool. Byte sizes round down to whole 2 MiB frames.
    ///
    /// # Panics
    /// Panics if the shared budget exceeds capacity.
    pub fn new(
        name: impl Into<String>,
        capacity_bytes: u64,
        shared_bytes: u64,
        profile: DramProfile,
    ) -> Self {
        let total = capacity_bytes / FRAME_BYTES;
        let shared = shared_bytes / FRAME_BYTES;
        MemoryNode {
            name: name.into(),
            split: RegionSplit::new(total, shared),
            dram: DramChannel::new(profile),
            store: FrameStore::new(),
            hotness: HotnessMap::new(),
            local_accesses: Counter::new(),
            remote_accesses: Counter::new(),
            failed: false,
        }
    }

    /// A CXL Type-3 FAM appliance: every frame is shared (pooled), none
    /// private — there is no local OS or process state in the box.
    pub fn fam_device(name: impl Into<String>, capacity_bytes: u64, profile: DramProfile) -> Self {
        Self::new(name, capacity_bytes, capacity_bytes, profile)
    }

    /// Node name for reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The region split (budgets, usage, resize).
    pub fn split(&self) -> &RegionSplit {
        &self.split
    }

    /// Mutable region split, for resizing policies.
    pub fn split_mut(&mut self) -> &mut RegionSplit {
        &mut self.split
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.split.total() * FRAME_BYTES
    }

    /// Shared-region budget in bytes.
    pub fn shared_bytes(&self) -> u64 {
        self.split.shared_budget() * FRAME_BYTES
    }

    /// Allocate a frame in the given region.
    pub fn alloc(&mut self, kind: RegionKind) -> Result<FrameId, RegionError> {
        self.ensure_alive();
        self.split.alloc(kind)
    }

    /// Allocate `n` frames; all-or-nothing.
    pub fn alloc_many(&mut self, kind: RegionKind, n: u64) -> Result<Vec<FrameId>, RegionError> {
        self.ensure_alive();
        self.split.alloc_many(kind, n)
    }

    /// Free a frame and discard any materialized contents.
    pub fn free(&mut self, frame: FrameId) -> Result<(), RegionError> {
        self.split.free(frame)?;
        self.store.discard(frame);
        self.hotness.forget(frame);
        Ok(())
    }

    /// Time an access of `bytes` against this node's DRAM, attributing it to
    /// `accessor` (equal to this node's id for local accesses). `frame`
    /// feeds hotness tracking when known.
    pub fn access(
        &mut self,
        now: SimTime,
        bytes: u64,
        accessor: AccessorId,
        local: bool,
        frame: Option<FrameId>,
    ) -> DramCompletion {
        match frame {
            Some(f) => self.access_run(now, bytes, accessor, local, &[f]),
            None => self.access_run(now, bytes, accessor, local, &[]),
        }
    }

    /// Vectored access: time a coalesced run of `bytes` against this node's
    /// DRAM as a single channel occupancy. `frames` lists the frame of every
    /// pre-coalescing chunk the run covers (in order, duplicates allowed);
    /// each gets one hotness sample, so hotness accounting is identical to
    /// issuing the chunks through [`MemoryNode::access`] one by one. A run
    /// over one frame *is* a single access.
    pub fn access_run(
        &mut self,
        now: SimTime,
        bytes: u64,
        accessor: AccessorId,
        local: bool,
        frames: &[FrameId],
    ) -> DramCompletion {
        self.ensure_alive();
        if local {
            self.local_accesses.inc();
        } else {
            self.remote_accesses.inc();
        }
        for f in frames {
            self.hotness.record(*f, accessor, 1);
        }
        self.dram.access(now, bytes)
    }

    /// Materialized-byte write into an allocated frame.
    ///
    /// # Panics
    /// Panics on unallocated frames (use `alloc` first) or crashed nodes.
    pub fn write_bytes(&mut self, frame: FrameId, offset: u64, data: &[u8]) {
        self.ensure_alive();
        // lmp-lint: allow(no-panic) — hardware-model contract, documented
        // under `# Panics`: the pool's maps gate every byte access on
        // allocation state, so an unallocated frame here is a pool bug.
        assert!(
            self.split.kind_of(frame).is_some(),
            "write to unallocated frame {frame:?} on {}",
            self.name
        );
        self.store.write(frame, offset, data);
    }

    /// Materialized-byte read from an allocated frame.
    ///
    /// # Panics
    /// Panics on unallocated frames or crashed nodes.
    pub fn read_bytes(&self, frame: FrameId, offset: u64, len: usize) -> Vec<u8> {
        // lmp-lint: allow(no-panic) — hardware-model contract, documented
        // under `# Panics`: upper layers gate on `is_failed()` first.
        assert!(!self.failed, "read from crashed node {}", self.name);
        // lmp-lint: allow(no-panic) — hardware-model contract; see above.
        assert!(
            self.split.kind_of(frame).is_some(),
            "read from unallocated frame {frame:?} on {}",
            self.name
        );
        self.store.read(frame, offset, len)
    }

    /// Copy out a whole frame (for migration and reconstruction).
    pub fn read_frame(&self, frame: FrameId) -> Vec<u8> {
        // lmp-lint: allow(no-panic) — hardware-model contract: migration and
        // reconstruction read frames only from live sources.
        assert!(!self.failed, "read from crashed node {}", self.name);
        self.store.read_frame(frame)
    }

    /// Replace a whole frame (for migration and reconstruction).
    pub fn write_frame(&mut self, frame: FrameId, data: &[u8]) {
        self.ensure_alive();
        self.store.write_frame(frame, data);
    }

    /// Hotness telemetry.
    pub fn hotness(&self) -> &HotnessMap {
        &self.hotness
    }

    /// Mutable hotness telemetry (epoch ticks).
    pub fn hotness_mut(&mut self) -> &mut HotnessMap {
        &mut self.hotness
    }

    /// DRAM channel telemetry.
    pub fn dram(&self) -> &DramChannel {
        &self.dram
    }

    /// Mutable DRAM channel (utilization queries need `&mut`).
    pub fn dram_mut(&mut self) -> &mut DramChannel {
        &mut self.dram
    }

    /// Accesses issued by this node's own processors.
    pub fn local_access_count(&self) -> u64 {
        self.local_accesses.get()
    }

    /// Accesses served on behalf of remote nodes.
    pub fn remote_access_count(&self) -> u64 {
        self.remote_accesses.get()
    }

    /// Crash the node: its memory (and pool contribution) disappears.
    pub fn crash(&mut self) {
        self.failed = true;
    }

    /// Whether the node has crashed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Warm-revive a crashed node: clear the failed flag, keeping memory
    /// contents intact. Valid because [`Self::crash`] only marks the node
    /// down — the model of a power/ToR loss where DRAM survives (battery
    /// backed or the outage never reached the hosts). A rejoin whose
    /// resurrection claim is *rejected* must use [`Self::restart`] instead.
    pub fn revive(&mut self) {
        self.failed = false;
    }

    /// Restart a crashed node with empty memory (all frames free).
    pub fn restart(&mut self) {
        let total = self.split.total();
        let shared = self.split.shared_budget();
        self.split = RegionSplit::new(total, shared);
        self.store = FrameStore::new();
        self.hotness = HotnessMap::new();
        self.failed = false;
    }

    fn ensure_alive(&self) {
        // lmp-lint: allow(no-panic) — hardware-model contract: a crashed
        // node's memory is physically gone; upper layers check
        // `is_failed()` before every access, so reaching this is a bug.
        assert!(!self.failed, "operation on crashed node {}", self.name);
    }

    /// Export this node's state into a telemetry registry, labelling every
    /// instrument with `server`. Fill a fresh registry per export — values
    /// are published absolutely, and per-node registries merge to rack
    /// level in the snapshot layer.
    pub fn export_into(
        &mut self,
        now: SimTime,
        server: &str,
        reg: &mut lmp_telemetry::MetricRegistry,
    ) {
        let labels = [("server", server)];
        reg.fill_counter("mem.accesses.local", &labels, self.local_accesses);
        reg.fill_counter("mem.accesses.remote", &labels, self.remote_accesses);
        reg.fill_counter_value("mem.dram.bytes", &labels, self.dram.bytes_accessed());
        reg.fill_counter_value("mem.dram.accesses", &labels, self.dram.access_count());
        reg.merge_histogram("mem.dram.latency", &labels, self.dram.latency_histogram());
        reg.set_gauge_value("mem.dram.utilization", &labels, self.dram.utilization(now));
        reg.set_gauge_value(
            "mem.frames.shared_used",
            &labels,
            self.split.shared_used() as f64,
        );
        reg.set_gauge_value(
            "mem.frames.shared_free",
            &labels,
            self.split.available(RegionKind::Shared) as f64,
        );
        reg.set_gauge_value(
            "mem.frames.private_used",
            &labels,
            self.split.private_used() as f64,
        );
        reg.set_gauge_value(
            "mem.hotness.live_pairs",
            &labels,
            self.hotness.live_pairs() as f64,
        );
        reg.set_gauge_value(
            "mem.failed",
            &labels,
            if self.failed { 1.0 } else { 0.0 },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmp_sim::units::GIB;

    fn node() -> MemoryNode {
        MemoryNode::new("s0", GIB, GIB / 2, DramProfile::xeon_gold_5120())
    }

    #[test]
    fn capacity_accounting() {
        let n = node();
        assert_eq!(n.capacity_bytes(), GIB);
        assert_eq!(n.shared_bytes(), GIB / 2);
    }

    #[test]
    fn fam_device_is_all_shared() {
        let d = MemoryNode::fam_device("pool", GIB, DramProfile::xeon_gold_5120());
        assert_eq!(d.split().shared_budget(), d.split().total());
        assert_eq!(d.split().private_budget(), 0);
    }

    #[test]
    fn alloc_access_free_cycle() {
        let mut n = node();
        let f = n.alloc(RegionKind::Shared).unwrap();
        let c = n.access(SimTime::ZERO, 64, 0, true, Some(f));
        assert_eq!(c.latency.as_nanos(), 82);
        assert_eq!(n.local_access_count(), 1);
        assert_eq!(n.hotness().total(f), 1);
        n.free(f).unwrap();
        assert_eq!(n.hotness().total(f), 0);
    }

    #[test]
    fn access_run_coalesces_occupancy_and_samples_each_frame() {
        let mut n = node();
        let f1 = n.alloc(RegionKind::Shared).unwrap();
        let f2 = n.alloc(RegionKind::Shared).unwrap();
        let run = n.access_run(SimTime::ZERO, 128, 3, false, &[f1, f2]);
        // One access on the channel, one remote bump, hotness on both frames.
        assert_eq!(n.remote_access_count(), 1);
        assert_eq!(n.dram().access_count(), 1);
        assert_eq!(n.hotness().total(f1), 1);
        assert_eq!(n.hotness().total(f2), 1);
        // Occupancy equals the same bytes issued as one plain access.
        let mut m = node();
        let g = m.alloc(RegionKind::Shared).unwrap();
        let single = m.access(SimTime::ZERO, 128, 3, false, Some(g));
        assert_eq!(run.complete, single.complete);
    }

    #[test]
    fn local_vs_remote_counters() {
        let mut n = node();
        n.access(SimTime::ZERO, 64, 0, true, None);
        n.access(SimTime::ZERO, 64, 1, false, None);
        n.access(SimTime::ZERO, 64, 2, false, None);
        assert_eq!(n.local_access_count(), 1);
        assert_eq!(n.remote_access_count(), 2);
    }

    #[test]
    fn bytes_survive_until_free() {
        let mut n = node();
        let f = n.alloc(RegionKind::Private).unwrap();
        n.write_bytes(f, 0, b"data");
        assert_eq!(n.read_bytes(f, 0, 4), b"data");
        n.free(f).unwrap();
        let f2 = n.alloc(RegionKind::Private).unwrap();
        assert_eq!(f2, f, "lowest-first reuse");
        assert_eq!(n.read_bytes(f2, 0, 4), vec![0; 4], "no stale data leak");
    }

    #[test]
    #[should_panic(expected = "unallocated frame")]
    fn write_to_unallocated_panics() {
        let mut n = node();
        n.write_bytes(FrameId(0), 0, b"x");
    }

    #[test]
    fn crash_blocks_operations_and_restart_clears() {
        let mut n = node();
        let f = n.alloc(RegionKind::Shared).unwrap();
        n.write_bytes(f, 0, b"precious");
        n.crash();
        assert!(n.is_failed());
        n.restart();
        assert!(!n.is_failed());
        // All frames free again; data gone.
        assert_eq!(n.split().shared_used(), 0);
        let f2 = n.alloc(RegionKind::Shared).unwrap();
        assert_eq!(n.read_bytes(f2, 0, 8), vec![0; 8]);
    }

    #[test]
    #[should_panic(expected = "crashed node")]
    fn access_on_crashed_node_panics() {
        let mut n = node();
        n.crash();
        n.access(SimTime::ZERO, 64, 0, true, None);
    }
}
