// Tests may unwrap/expect freely; production code must not (see crates/lint).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # lmp-mem — memory substrate
//!
//! The building blocks under both pool architectures: 2 MiB frames with a
//! deterministic allocator, DRAM timing anchored to the paper's testbed
//! numbers (82 ns / 97 GB/s), the private/shared region split that defines a
//! logical pool, lazily materialized frame contents for correctness tests,
//! and access-bit hotness tracking for the locality balancer.
//!
//! A server's memory and a physical pool appliance are the **same type**
//! ([`node::MemoryNode`]) in different configurations — a FAM device is just
//! a node whose frames are all shared — which keeps the logical-vs-physical
//! comparison apples-to-apples.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dram;
pub mod frame;
pub mod hotness;
pub mod node;
pub mod region;
pub mod store;

pub use dram::{DramChannel, DramCompletion, DramProfile};
pub use frame::{FrameAllocator, FrameError, FrameId, FRAME_BYTES};
pub use hotness::{AccessorId, HotFrame, HotnessMap};
pub use node::MemoryNode;
pub use region::{RegionError, RegionKind, RegionSplit};
pub use store::FrameStore;
