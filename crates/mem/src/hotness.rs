//! Access-bit hotness tracking.
//!
//! §5 "Locality balancing": NUMA systems unmap pages and take faults to
//! sample accesses, which the paper deems too slow for LMPs; it proposes
//! hardware performance counters plus per-frame access bits. [`HotnessMap`]
//! models that: each access sets a counter for the (frame, accessor) pair;
//! an epoch tick halves the counters (exponential decay) so rankings follow
//! the current phase of the workload.

use crate::frame::FrameId;
use std::collections::BTreeMap;

/// Identifies who performed an access (a server id in the LMP runtime).
pub type AccessorId = u32;

/// Decaying per-frame, per-accessor access counters.
#[derive(Debug, Clone, Default)]
pub struct HotnessMap {
    /// (frame → accessor → decayed access count)
    counts: BTreeMap<FrameId, BTreeMap<AccessorId, u64>>,
    epoch: u64,
}

/// A frame ranked hot for some accessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotFrame {
    /// The frame.
    pub frame: FrameId,
    /// Who is hitting it.
    pub accessor: AccessorId,
    /// Decayed access count.
    pub count: u64,
}

impl HotnessMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` accesses to `frame` by `accessor`.
    pub fn record(&mut self, frame: FrameId, accessor: AccessorId, n: u64) {
        *self
            .counts
            .entry(frame)
            .or_default()
            .entry(accessor)
            .or_insert(0) += n;
    }

    /// Decayed access count for a (frame, accessor) pair.
    pub fn count(&self, frame: FrameId, accessor: AccessorId) -> u64 {
        self.counts
            .get(&frame)
            .and_then(|m| m.get(&accessor))
            .copied()
            .unwrap_or(0)
    }

    /// Total (all-accessor) decayed count for a frame.
    pub fn total(&self, frame: FrameId) -> u64 {
        self.counts
            .get(&frame)
            .map(|m| m.values().sum())
            .unwrap_or(0)
    }

    /// The accessor with the most accesses to `frame`, if any.
    pub fn dominant_accessor(&self, frame: FrameId) -> Option<(AccessorId, u64)> {
        let m = self.counts.get(&frame)?;
        m.iter()
            // Deterministic tie-break: lowest accessor id wins.
            .max_by_key(|(id, c)| (**c, std::cmp::Reverse(**id)))
            .map(|(id, c)| (*id, *c))
    }

    /// Advance one epoch: halve every counter, dropping entries that reach
    /// zero. Returns the number of live (frame, accessor) pairs remaining.
    pub fn tick_epoch(&mut self) -> usize {
        self.epoch += 1;
        let mut live = 0;
        self.counts.retain(|_, per_acc| {
            per_acc.retain(|_, c| {
                *c /= 2;
                *c > 0
            });
            live += per_acc.len();
            !per_acc.is_empty()
        });
        live
    }

    /// Number of epoch ticks so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The `k` hottest (frame, accessor) pairs, hottest first, with a
    /// deterministic tie order (by count desc, then frame, then accessor).
    pub fn top_k(&self, k: usize) -> Vec<HotFrame> {
        let mut all: Vec<HotFrame> = self
            .counts
            .iter()
            .flat_map(|(f, per_acc)| {
                per_acc.iter().map(|(a, c)| HotFrame {
                    frame: *f,
                    accessor: *a,
                    count: *c,
                })
            })
            .collect();
        all.sort_by(|x, y| {
            y.count
                .cmp(&x.count)
                .then(x.frame.cmp(&y.frame))
                .then(x.accessor.cmp(&y.accessor))
        });
        all.truncate(k);
        all
    }

    /// Forget a frame entirely (it was freed or migrated away).
    pub fn forget(&mut self, frame: FrameId) {
        self.counts.remove(&frame);
    }

    /// Observed load attributed to one accessor across every frame on this
    /// node: `(frames touched, decayed access count)`. Iterates the
    /// `BTreeMap` in key order, so the result is deterministic.
    pub fn accessor_load(&self, accessor: AccessorId) -> (u64, u64) {
        let mut frames = 0;
        let mut accesses = 0;
        for per_acc in self.counts.values() {
            if let Some(c) = per_acc.get(&accessor) {
                frames += 1;
                accesses += c;
            }
        }
        (frames, accesses)
    }

    /// Number of live (frame, accessor) pairs currently tracked.
    pub fn live_pairs(&self) -> usize {
        self.counts.values().map(|per_acc| per_acc.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut h = HotnessMap::new();
        h.record(FrameId(1), 0, 5);
        h.record(FrameId(1), 1, 3);
        assert_eq!(h.count(FrameId(1), 0), 5);
        assert_eq!(h.total(FrameId(1)), 8);
        assert_eq!(h.dominant_accessor(FrameId(1)), Some((0, 5)));
    }

    #[test]
    fn decay_halves_and_drops() {
        let mut h = HotnessMap::new();
        h.record(FrameId(1), 0, 4);
        h.record(FrameId(2), 0, 1);
        h.tick_epoch();
        assert_eq!(h.count(FrameId(1), 0), 2);
        assert_eq!(h.count(FrameId(2), 0), 0);
        h.tick_epoch();
        h.tick_epoch();
        assert_eq!(h.total(FrameId(1)), 0);
        assert_eq!(h.epoch(), 3);
    }

    #[test]
    fn top_k_orders_deterministically() {
        let mut h = HotnessMap::new();
        h.record(FrameId(1), 0, 10);
        h.record(FrameId(2), 1, 10);
        h.record(FrameId(3), 0, 99);
        let top = h.top_k(2);
        assert_eq!(top[0].frame, FrameId(3));
        // Tie between frames 1 and 2 resolved by frame id.
        assert_eq!(top[1].frame, FrameId(1));
    }

    #[test]
    fn dominant_accessor_tie_breaks_low_id() {
        let mut h = HotnessMap::new();
        h.record(FrameId(7), 3, 5);
        h.record(FrameId(7), 1, 5);
        assert_eq!(h.dominant_accessor(FrameId(7)), Some((1, 5)));
    }

    #[test]
    fn forget_removes_frame() {
        let mut h = HotnessMap::new();
        h.record(FrameId(9), 0, 5);
        h.forget(FrameId(9));
        assert_eq!(h.total(FrameId(9)), 0);
        assert!(h.top_k(10).is_empty());
    }
}
