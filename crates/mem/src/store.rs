//! Materialized frame contents.
//!
//! Timing experiments run "phantom": only byte *counts* flow through the
//! simulator, so a 96 GB vector costs nothing to model. Correctness-critical
//! machinery (migration, coherence, erasure coding, the KV store) instead
//! reads and writes real bytes through [`FrameStore`], which materializes
//! frame backing lazily. The two modes share all control-path code.

use crate::frame::{FrameId, FRAME_BYTES};
use std::collections::BTreeMap;

/// Lazily materialized byte backing for a node's frames.
#[derive(Debug, Default)]
pub struct FrameStore {
    frames: BTreeMap<FrameId, Box<[u8]>>,
}

impl FrameStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of frames currently materialized.
    pub fn materialized(&self) -> usize {
        self.frames.len()
    }

    /// Write `data` into `frame` starting at `offset`.
    ///
    /// # Panics
    /// Panics when the write would cross the frame boundary — callers split
    /// multi-frame operations, mirroring how hardware splits cache lines.
    pub fn write(&mut self, frame: FrameId, offset: u64, data: &[u8]) {
        // lmp-lint: allow(no-panic) — documented `# Panics` frame-boundary
        // contract, mirroring how hardware faults on cross-line writes.
        assert!(
            offset + data.len() as u64 <= FRAME_BYTES,
            "write crosses frame boundary: offset {offset} + {} > {FRAME_BYTES}",
            data.len()
        );
        let backing = self
            .frames
            .entry(frame)
            .or_insert_with(|| vec![0u8; FRAME_BYTES as usize].into_boxed_slice());
        backing[offset as usize..offset as usize + data.len()].copy_from_slice(data);
    }

    /// Read `len` bytes from `frame` starting at `offset`. Unmaterialized
    /// frames read as zeros (fresh memory).
    ///
    /// # Panics
    /// Panics when the read would cross the frame boundary.
    pub fn read(&self, frame: FrameId, offset: u64, len: usize) -> Vec<u8> {
        // lmp-lint: allow(no-panic) — documented `# Panics` frame-boundary
        // contract, mirroring how hardware faults on cross-line reads.
        assert!(
            offset + len as u64 <= FRAME_BYTES,
            "read crosses frame boundary: offset {offset} + {len} > {FRAME_BYTES}"
        );
        match self.frames.get(&frame) {
            Some(b) => b[offset as usize..offset as usize + len].to_vec(),
            None => vec![0u8; len],
        }
    }

    /// Copy a whole frame's contents out (zeros if unmaterialized).
    pub fn read_frame(&self, frame: FrameId) -> Vec<u8> {
        self.read(frame, 0, FRAME_BYTES as usize)
    }

    /// Replace a whole frame's contents.
    ///
    /// # Panics
    /// Panics when `data` is not exactly one frame long.
    pub fn write_frame(&mut self, frame: FrameId, data: &[u8]) {
        // lmp-lint: allow(no-panic) — documented `# Panics` whole-frame
        // contract; callers size buffers from FRAME_BYTES.
        assert_eq!(data.len() as u64, FRAME_BYTES, "whole-frame write size");
        self.write(frame, 0, data);
    }

    /// Drop a frame's backing (freed or crashed away).
    pub fn discard(&mut self, frame: FrameId) {
        self.frames.remove(&frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmaterialized_reads_zero() {
        let s = FrameStore::new();
        assert_eq!(s.read(FrameId(0), 100, 4), vec![0; 4]);
        assert_eq!(s.materialized(), 0);
    }

    #[test]
    fn write_then_read() {
        let mut s = FrameStore::new();
        s.write(FrameId(3), 10, b"hello");
        assert_eq!(s.read(FrameId(3), 10, 5), b"hello");
        assert_eq!(s.read(FrameId(3), 9, 1), [0]);
        assert_eq!(s.materialized(), 1);
    }

    #[test]
    fn frames_are_independent() {
        let mut s = FrameStore::new();
        s.write(FrameId(0), 0, b"aaa");
        s.write(FrameId(1), 0, b"bbb");
        assert_eq!(s.read(FrameId(0), 0, 3), b"aaa");
        assert_eq!(s.read(FrameId(1), 0, 3), b"bbb");
    }

    #[test]
    fn whole_frame_round_trip() {
        let mut s = FrameStore::new();
        let mut data = vec![0u8; FRAME_BYTES as usize];
        data[0] = 7;
        data[FRAME_BYTES as usize - 1] = 9;
        s.write_frame(FrameId(5), &data);
        assert_eq!(s.read_frame(FrameId(5)), data);
    }

    #[test]
    fn discard_resets_to_zero() {
        let mut s = FrameStore::new();
        s.write(FrameId(2), 0, b"x");
        s.discard(FrameId(2));
        assert_eq!(s.read(FrameId(2), 0, 1), [0]);
    }

    #[test]
    #[should_panic(expected = "crosses frame boundary")]
    fn cross_boundary_write_panics() {
        let mut s = FrameStore::new();
        s.write(FrameId(0), FRAME_BYTES - 2, b"xyz");
    }

    #[test]
    #[should_panic(expected = "crosses frame boundary")]
    fn cross_boundary_read_panics() {
        let s = FrameStore::new();
        s.read(FrameId(0), FRAME_BYTES - 1, 2);
    }
}
