//! Private/shared partitioning of a node's frames.
//!
//! The core of the LMP idea (§3): each server's memory is logically split
//! into a **private** region (OS, stacks, heaps — only local processors) and
//! a **shared** region that contributes to the rack-wide pool. The split is
//! a pair of frame budgets enforced at allocation time, so it can be
//! re-balanced at runtime ([`RegionSplit::resize_shared`]) without touching
//! data — the flexibility benefit of §4.5.

use crate::frame::{FrameAllocator, FrameError, FrameId};
use std::collections::BTreeSet;

/// Which region a frame belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Exclusively local: OS state, process heaps, …
    Private,
    /// Part of the rack-wide logical pool; remotely accessible.
    Shared,
}

/// Errors from region-aware allocation and resizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionError {
    /// The region's budget (or the node's physical frames) is exhausted.
    BudgetExhausted(RegionKind),
    /// Shrinking below the region's current usage.
    ShrinkBelowUsage {
        /// Frames currently allocated in the region being shrunk.
        used: u64,
        /// The requested new budget.
        requested: u64,
    },
    /// Underlying frame-allocator failure.
    Frame(FrameError),
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::BudgetExhausted(k) => write!(f, "{k:?} region budget exhausted"),
            RegionError::ShrinkBelowUsage { used, requested } => {
                write!(f, "cannot shrink to {requested} frames: {used} in use")
            }
            RegionError::Frame(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegionError {}

impl From<FrameError> for RegionError {
    fn from(e: FrameError) -> Self {
        RegionError::Frame(e)
    }
}

/// Frame allocator with a private/shared budget split.
#[derive(Debug, Clone)]
pub struct RegionSplit {
    frames: FrameAllocator,
    shared_budget: u64,
    shared_frames: BTreeSet<FrameId>,
    private_used: u64,
}

impl RegionSplit {
    /// A node with `total` frames, of which `shared_budget` may be lent to
    /// the pool.
    ///
    /// # Panics
    /// Panics if `shared_budget > total`.
    pub fn new(total: u64, shared_budget: u64) -> Self {
        // lmp-lint: allow(no-panic) — documented `# Panics` ctor precondition;
        // an over-budget split is a configuration bug.
        assert!(
            shared_budget <= total,
            "shared budget {shared_budget} exceeds {total} frames"
        );
        RegionSplit {
            frames: FrameAllocator::new(total),
            shared_budget,
            shared_frames: BTreeSet::new(),
            private_used: 0,
        }
    }

    /// Total frames on the node.
    pub fn total(&self) -> u64 {
        self.frames.total()
    }

    /// Current shared budget, in frames.
    pub fn shared_budget(&self) -> u64 {
        self.shared_budget
    }

    /// Current private budget (everything not shared).
    pub fn private_budget(&self) -> u64 {
        self.total() - self.shared_budget
    }

    /// Frames allocated in the shared region.
    pub fn shared_used(&self) -> u64 {
        self.shared_frames.len() as u64
    }

    /// Frames allocated in the private region.
    pub fn private_used(&self) -> u64 {
        self.private_used
    }

    /// Free frames available to the given region right now.
    pub fn available(&self, kind: RegionKind) -> u64 {
        let budget_room = match kind {
            RegionKind::Shared => self.shared_budget - self.shared_used(),
            RegionKind::Private => self.private_budget() - self.private_used,
        };
        budget_room.min(self.frames.free_count())
    }

    /// Which region a frame currently belongs to (`None` if free).
    pub fn kind_of(&self, frame: FrameId) -> Option<RegionKind> {
        if !self.frames.is_allocated(frame) {
            None
        } else if self.shared_frames.contains(&frame) {
            Some(RegionKind::Shared)
        } else {
            Some(RegionKind::Private)
        }
    }

    /// Allocate one frame in `kind`.
    pub fn alloc(&mut self, kind: RegionKind) -> Result<FrameId, RegionError> {
        if self.available(kind) == 0 {
            return Err(RegionError::BudgetExhausted(kind));
        }
        let f = self.frames.alloc()?;
        match kind {
            RegionKind::Shared => {
                self.shared_frames.insert(f);
            }
            RegionKind::Private => self.private_used += 1,
        }
        Ok(f)
    }

    /// Allocate `n` frames in `kind`; all-or-nothing.
    pub fn alloc_many(&mut self, kind: RegionKind, n: u64) -> Result<Vec<FrameId>, RegionError> {
        if self.available(kind) < n {
            return Err(RegionError::BudgetExhausted(kind));
        }
        (0..n).map(|_| self.alloc(kind)).collect()
    }

    /// Free a frame (its region membership is forgotten).
    pub fn free(&mut self, frame: FrameId) -> Result<(), RegionError> {
        match self.kind_of(frame) {
            None => Err(RegionError::Frame(FrameError::NotAllocated)),
            Some(RegionKind::Shared) => {
                self.frames.free(frame)?;
                self.shared_frames.remove(&frame);
                Ok(())
            }
            Some(RegionKind::Private) => {
                self.frames.free(frame)?;
                self.private_used -= 1;
                Ok(())
            }
        }
    }

    /// Change the shared budget — the ratio-flexibility knob of §4.5.
    ///
    /// Fails (without changes) when the new budget would not cover frames
    /// already allocated in either region.
    pub fn resize_shared(&mut self, new_shared_budget: u64) -> Result<(), RegionError> {
        if new_shared_budget > self.total() {
            return Err(RegionError::ShrinkBelowUsage {
                used: self.private_used,
                requested: self.total() - new_shared_budget.min(self.total()),
            });
        }
        if new_shared_budget < self.shared_used() {
            return Err(RegionError::ShrinkBelowUsage {
                used: self.shared_used(),
                requested: new_shared_budget,
            });
        }
        let new_private_budget = self.total() - new_shared_budget;
        if new_private_budget < self.private_used {
            return Err(RegionError::ShrinkBelowUsage {
                used: self.private_used,
                requested: new_private_budget,
            });
        }
        self.shared_budget = new_shared_budget;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_enforced() {
        let mut s = RegionSplit::new(10, 4);
        assert_eq!(s.available(RegionKind::Shared), 4);
        assert_eq!(s.available(RegionKind::Private), 6);
        s.alloc_many(RegionKind::Shared, 4).unwrap();
        assert_eq!(
            s.alloc(RegionKind::Shared),
            Err(RegionError::BudgetExhausted(RegionKind::Shared))
        );
        // Private still has room.
        s.alloc_many(RegionKind::Private, 6).unwrap();
        assert_eq!(
            s.alloc(RegionKind::Private),
            Err(RegionError::BudgetExhausted(RegionKind::Private))
        );
    }

    #[test]
    fn kind_tracking_and_free() {
        let mut s = RegionSplit::new(4, 2);
        let sh = s.alloc(RegionKind::Shared).unwrap();
        let pr = s.alloc(RegionKind::Private).unwrap();
        assert_eq!(s.kind_of(sh), Some(RegionKind::Shared));
        assert_eq!(s.kind_of(pr), Some(RegionKind::Private));
        s.free(sh).unwrap();
        assert_eq!(s.kind_of(sh), None);
        assert_eq!(s.shared_used(), 0);
        assert_eq!(s.private_used(), 1);
    }

    #[test]
    fn grow_shared_region() {
        let mut s = RegionSplit::new(10, 2);
        s.alloc_many(RegionKind::Shared, 2).unwrap();
        assert!(s.alloc(RegionKind::Shared).is_err());
        s.resize_shared(10).unwrap();
        assert!(s.alloc(RegionKind::Shared).is_ok());
        assert_eq!(s.private_budget(), 0);
    }

    #[test]
    fn shrink_respects_usage() {
        let mut s = RegionSplit::new(10, 5);
        s.alloc_many(RegionKind::Shared, 3).unwrap();
        assert!(matches!(
            s.resize_shared(2),
            Err(RegionError::ShrinkBelowUsage { used: 3, requested: 2 })
        ));
        s.resize_shared(3).unwrap();
        assert_eq!(s.shared_budget(), 3);
    }

    #[test]
    fn grow_shared_respects_private_usage() {
        let mut s = RegionSplit::new(10, 2);
        s.alloc_many(RegionKind::Private, 7).unwrap();
        // Growing shared to 4 would leave private budget 6 < 7 used.
        assert!(s.resize_shared(4).is_err());
        s.resize_shared(3).unwrap();
    }

    #[test]
    fn budget_beyond_total_rejected() {
        let mut s = RegionSplit::new(4, 0);
        assert!(s.resize_shared(5).is_err());
    }

    #[test]
    fn available_is_min_of_budget_and_physical() {
        let mut s = RegionSplit::new(4, 4);
        // Physically exhaust via shared.
        s.alloc_many(RegionKind::Shared, 4).unwrap();
        assert_eq!(s.available(RegionKind::Private), 0);
    }
}
