//! Physical frames and the per-node frame allocator.
//!
//! Memory is managed in 2 MiB frames (matching x86 huge pages, the natural
//! granularity for pooled memory: coarse enough that 96 GB is ~49k frames,
//! fine enough for placement and migration decisions). The allocator is a
//! deterministic free-set: allocation always returns the lowest free frame,
//! so runs replay identically.

use std::collections::BTreeSet;

/// Size of one physical frame.
pub const FRAME_BYTES: u64 = 2 * 1024 * 1024;

/// Index of a frame within one node's memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(pub u64);

/// Errors from frame allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Not enough free frames to satisfy the request.
    OutOfFrames,
    /// The frame was not allocated (double free or foreign frame).
    NotAllocated,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::OutOfFrames => write!(f, "out of frames"),
            FrameError::NotAllocated => write!(f, "frame not allocated"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Deterministic lowest-first frame allocator.
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    total: u64,
    free: BTreeSet<u64>,
}

impl FrameAllocator {
    /// An allocator over `total` frames, all initially free.
    pub fn new(total: u64) -> Self {
        FrameAllocator {
            total,
            free: (0..total).collect(),
        }
    }

    /// Build sized in bytes, rounding **down** to whole frames.
    pub fn with_capacity_bytes(bytes: u64) -> Self {
        Self::new(bytes / FRAME_BYTES)
    }

    /// Total frames managed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Frames currently free.
    pub fn free_count(&self) -> u64 {
        self.free.len() as u64
    }

    /// Frames currently allocated.
    pub fn allocated(&self) -> u64 {
        self.total.saturating_sub(self.free_count())
    }

    /// Whether `frame` is currently allocated.
    pub fn is_allocated(&self, frame: FrameId) -> bool {
        frame.0 < self.total && !self.free.contains(&frame.0)
    }

    /// Allocate the lowest-numbered free frame.
    pub fn alloc(&mut self) -> Result<FrameId, FrameError> {
        match self.free.iter().next().copied() {
            Some(f) => {
                self.free.remove(&f);
                Ok(FrameId(f))
            }
            None => Err(FrameError::OutOfFrames),
        }
    }

    /// Allocate `n` frames (not necessarily contiguous), lowest-first.
    /// All-or-nothing: on failure nothing is allocated.
    pub fn alloc_many(&mut self, n: u64) -> Result<Vec<FrameId>, FrameError> {
        if self.free_count() < n {
            return Err(FrameError::OutOfFrames);
        }
        // The up-front free_count check makes every alloc() succeed, so
        // collecting the Results preserves the all-or-nothing contract.
        (0..n).map(|_| self.alloc()).collect()
    }

    /// Free a frame.
    pub fn free(&mut self, frame: FrameId) -> Result<(), FrameError> {
        if frame.0 >= self.total || self.free.contains(&frame.0) {
            return Err(FrameError::NotAllocated);
        }
        self.free.insert(frame.0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_lowest_first() {
        let mut a = FrameAllocator::new(4);
        assert_eq!(a.alloc().unwrap(), FrameId(0));
        assert_eq!(a.alloc().unwrap(), FrameId(1));
        a.free(FrameId(0)).unwrap();
        assert_eq!(a.alloc().unwrap(), FrameId(0));
    }

    #[test]
    fn exhaustion() {
        let mut a = FrameAllocator::new(2);
        a.alloc().unwrap();
        a.alloc().unwrap();
        assert_eq!(a.alloc(), Err(FrameError::OutOfFrames));
        assert_eq!(a.allocated(), 2);
    }

    #[test]
    fn double_free_rejected() {
        let mut a = FrameAllocator::new(2);
        let f = a.alloc().unwrap();
        a.free(f).unwrap();
        assert_eq!(a.free(f), Err(FrameError::NotAllocated));
    }

    #[test]
    fn foreign_frame_rejected() {
        let mut a = FrameAllocator::new(2);
        assert_eq!(a.free(FrameId(99)), Err(FrameError::NotAllocated));
    }

    #[test]
    fn alloc_many_is_atomic() {
        let mut a = FrameAllocator::new(3);
        assert!(a.alloc_many(4).is_err());
        assert_eq!(a.free_count(), 3);
        let got = a.alloc_many(3).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(a.free_count(), 0);
    }

    #[test]
    fn capacity_bytes_rounds_down() {
        let a = FrameAllocator::with_capacity_bytes(5 * FRAME_BYTES - 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn is_allocated_tracks_state() {
        let mut a = FrameAllocator::new(2);
        let f = a.alloc().unwrap();
        assert!(a.is_allocated(f));
        a.free(f).unwrap();
        assert!(!a.is_allocated(f));
        assert!(!a.is_allocated(FrameId(5)));
    }
}
