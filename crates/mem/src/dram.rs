//! Local DRAM timing.
//!
//! One [`DramChannel`] models a server's aggregate memory system: a serial
//! resource at the socket's peak streaming bandwidth plus a loaded-latency
//! curve. The default profile is the paper's testbed (Table 1 plus §4.3):
//! Intel Xeon Gold 5120, 82 ns unloaded local latency, 97 GB/s local
//! bandwidth, and a maximum loaded local latency of ~148 ns (derived from
//! §4.3: remote max loaded latency is 2.8×/3.6× the local max for
//! Link0/Link1, i.e. 418/2.8 ≈ 527/3.6 ≈ 148 ns).

use lmp_sim::latency::LoadedLatencyCurve;
use lmp_sim::prelude::*;

/// Performance envelope of a node's local memory system.
#[derive(Debug, Clone, PartialEq)]
pub struct DramProfile {
    /// Name used in reports.
    pub name: String,
    /// Latency vs. utilization.
    pub curve: LoadedLatencyCurve,
    /// Peak streaming bandwidth (all channels combined).
    pub bandwidth: Bandwidth,
}

impl DramProfile {
    /// Build a custom profile.
    pub fn new(name: impl Into<String>, curve: LoadedLatencyCurve, bandwidth: Bandwidth) -> Self {
        DramProfile {
            name: name.into(),
            curve,
            bandwidth,
        }
    }

    /// The paper's testbed socket: 82 ns / 97 GB/s (Table 1), max loaded
    /// latency ≈148 ns (§4.3).
    pub fn xeon_gold_5120() -> Self {
        Self::new(
            "LocalDRAM",
            LoadedLatencyCurve::from_nanos(82, 148),
            Bandwidth::from_gbps(97.0),
        )
    }
}

/// Completion report for one DRAM access batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramCompletion {
    /// Instant the data is available (load) or durable (store).
    pub complete: SimTime,
    /// Loaded-latency component.
    pub latency: SimDuration,
    /// Time spent waiting for the memory system behind other traffic.
    pub queued: SimDuration,
}

/// A node's local memory system as a shared serial resource.
#[derive(Debug)]
pub struct DramChannel {
    profile: DramProfile,
    busy: BusyTracker,
    util: Ewma,
    bytes: Counter,
    accesses: Counter,
    latency_hist: Histogram,
}

/// Utilization window; matches the fabric link window so local and remote
/// load estimates react on the same timescale.
const UTIL_WINDOW: SimDuration = SimDuration::from_micros(50);

impl DramChannel {
    /// A fresh, idle channel.
    pub fn new(profile: DramProfile) -> Self {
        DramChannel {
            profile,
            busy: BusyTracker::new(UTIL_WINDOW),
            util: Ewma::new(0.3),
            bytes: Counter::new(),
            accesses: Counter::new(),
            latency_hist: Histogram::new(),
        }
    }

    /// The channel's profile.
    pub fn profile(&self) -> &DramProfile {
        &self.profile
    }

    /// Access `bytes` of local memory at `now` (load or store — the model
    /// is symmetric for streaming traffic).
    pub fn access(&mut self, now: SimTime, bytes: u64) -> DramCompletion {
        let inst = self.busy.utilization(now);
        self.util.observe(inst);
        let u = self.util.get_or(inst);
        let latency = self.profile.curve.at(u);
        let service = self.profile.bandwidth.time_to_transfer(bytes);
        let (start, done) = self.busy.occupy(now, service);
        self.bytes.add(bytes);
        self.accesses.inc();
        let complete = done + latency;
        self.latency_hist
            .record_duration(complete.duration_since(now));
        DramCompletion {
            complete,
            latency,
            queued: start.duration_since(now),
        }
    }

    /// Windowed utilization in `[0, 1]`.
    pub fn utilization(&mut self, now: SimTime) -> f64 {
        self.busy.utilization(now)
    }

    /// Total bytes accessed.
    pub fn bytes_accessed(&self) -> u64 {
        self.bytes.get()
    }

    /// Total access batches served.
    pub fn access_count(&self) -> u64 {
        self.accesses.get()
    }

    /// Per-access completion-time distribution (ns).
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency_hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn default_profile_matches_table1() {
        let p = DramProfile::xeon_gold_5120();
        assert_eq!(p.curve.min().as_nanos(), 82);
        assert!((p.bandwidth.as_gbps() - 97.0).abs() < 1e-9);
    }

    #[test]
    fn unloaded_access_at_min_latency() {
        let mut d = DramChannel::new(DramProfile::xeon_gold_5120());
        let c = d.access(t(0), 64);
        assert_eq!(c.latency.as_nanos(), 82);
        assert_eq!(c.queued, SimDuration::ZERO);
    }

    #[test]
    fn streaming_bandwidth_caps_at_97() {
        let mut d = DramChannel::new(DramProfile::xeon_gold_5120());
        // 14 cores each issuing chunks as fast as possible.
        let chunk = 1_000_000u64;
        let mut done = t(0);
        let total = 970_000_000u64; // 10ms at 97GB/s
        for i in 0..(total / chunk) {
            let c = d.access(t(i), chunk);
            done = done.max(c.complete);
        }
        let bw = Bandwidth::measured(total, done.duration_since(t(0)));
        assert!((bw.as_gbps() - 97.0).abs() < 1.0, "bw {bw}");
    }

    #[test]
    fn latency_climbs_under_load() {
        let mut d = DramChannel::new(DramProfile::xeon_gold_5120());
        let first = d.access(t(0), 64).latency;
        let mut now = t(0);
        let mut last = first;
        for _ in 0..5_000 {
            last = d.access(now, 64 * 1024).latency;
            now += SimDuration::from_nanos(50);
        }
        assert!(last > first);
        assert!(last.as_nanos() <= 148);
    }

    #[test]
    fn counters() {
        let mut d = DramChannel::new(DramProfile::xeon_gold_5120());
        d.access(t(0), 10);
        d.access(t(0), 20);
        assert_eq!(d.bytes_accessed(), 30);
        assert_eq!(d.access_count(), 2);
    }
}
