// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Property-based tests for the memory substrate.

use lmp_mem::{FrameAllocator, FrameId, FrameStore, RegionKind, RegionSplit};
use proptest::prelude::*;
use std::collections::HashSet;

/// Ops driving the allocator state machine.
#[derive(Debug, Clone)]
enum AllocOp {
    Alloc,
    FreeNth(usize),
}

fn alloc_ops() -> impl Strategy<Value = Vec<AllocOp>> {
    proptest::collection::vec(
        prop_oneof![
            2 => Just(AllocOp::Alloc),
            1 => (0usize..64).prop_map(AllocOp::FreeNth),
        ],
        1..200,
    )
}

proptest! {
    /// The allocator never hands out a frame twice, never loses frames, and
    /// its free count always matches ground truth.
    #[test]
    fn allocator_never_double_allocates(total in 1u64..128, ops in alloc_ops()) {
        let mut a = FrameAllocator::new(total);
        let mut held: Vec<FrameId> = Vec::new();
        for op in ops {
            match op {
                AllocOp::Alloc => {
                    match a.alloc() {
                        Ok(f) => {
                            prop_assert!(!held.contains(&f), "double allocation of {f:?}");
                            prop_assert!(f.0 < total);
                            held.push(f);
                        }
                        Err(_) => prop_assert_eq!(held.len() as u64, total),
                    }
                }
                AllocOp::FreeNth(n) => {
                    if !held.is_empty() {
                        let f = held.remove(n % held.len());
                        prop_assert!(a.free(f).is_ok());
                        prop_assert!(a.free(f).is_err(), "double free accepted");
                    }
                }
            }
            prop_assert_eq!(a.allocated(), held.len() as u64);
            prop_assert_eq!(a.free_count(), total - held.len() as u64);
        }
    }

    /// Region budgets are conserved under arbitrary alloc/free/resize
    /// sequences: shared_used ≤ shared_budget, private_used ≤ private_budget,
    /// and the two regions never overlap.
    #[test]
    fn region_split_invariants(
        total in 4u64..64,
        ops in proptest::collection::vec((0u8..4, 0u64..64), 1..200),
    ) {
        let mut s = RegionSplit::new(total, total / 2);
        let mut shared: HashSet<FrameId> = HashSet::new();
        let mut private: HashSet<FrameId> = HashSet::new();
        for (op, arg) in ops {
            match op {
                0 => {
                    if let Ok(f) = s.alloc(RegionKind::Shared) {
                        prop_assert!(!shared.contains(&f) && !private.contains(&f));
                        shared.insert(f);
                    }
                }
                1 => {
                    if let Ok(f) = s.alloc(RegionKind::Private) {
                        prop_assert!(!shared.contains(&f) && !private.contains(&f));
                        private.insert(f);
                    }
                }
                2 => {
                    // Free an arbitrary held frame.
                    let all: Vec<FrameId> = shared.iter().chain(private.iter()).copied().collect();
                    if !all.is_empty() {
                        let f = all[arg as usize % all.len()];
                        prop_assert!(s.free(f).is_ok());
                        shared.remove(&f);
                        private.remove(&f);
                    }
                }
                _ => {
                    // Attempt resize; success or failure, invariants hold.
                    let _ = s.resize_shared(arg % (total + 1));
                }
            }
            prop_assert_eq!(s.shared_used(), shared.len() as u64);
            prop_assert_eq!(s.private_used(), private.len() as u64);
            prop_assert!(s.shared_used() <= s.shared_budget());
            prop_assert!(s.private_used() <= s.private_budget());
            prop_assert_eq!(s.shared_budget() + s.private_budget(), total);
        }
    }

    /// FrameStore writes are exact: reading back any written range returns
    /// the written bytes; untouched bytes read as zero.
    #[test]
    fn store_read_your_writes(
        writes in proptest::collection::vec(
            (0u64..4096, proptest::collection::vec(any::<u8>(), 1..64)),
            1..40,
        ),
    ) {
        let mut s = FrameStore::new();
        let mut model = vec![0u8; 8192];
        for (off, data) in &writes {
            s.write(FrameId(0), *off, data);
            model[*off as usize..*off as usize + data.len()].copy_from_slice(data);
        }
        let got = s.read(FrameId(0), 0, model.len());
        prop_assert_eq!(got, model);
    }
}
