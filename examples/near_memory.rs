// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Near-memory computing (§4.4): reduce a striped vector by pulling all
//! the data to one server vs shipping the computation to each stripe's
//! holder — and verify both produce the identical sum on materialized
//! data.
//!
//! Run with: `cargo run --release --example near_memory`

use lmp::compute::{reduce_timed, reduce_value, DistVector, ReduceOp, ScanParams, Strategy};
use lmp::core::prelude::*;
use lmp::fabric::{Fabric, LinkProfile, NodeId};
use lmp::mem::{DramProfile, FRAME_BYTES};
use lmp::sim::prelude::*;

fn build() -> (LogicalPool, Fabric, DistVector) {
    let mut pool = LogicalPool::new(PoolConfig {
        servers: 4,
        capacity_per_server: 40 * FRAME_BYTES,
        shared_per_server: 32 * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 64,
    });
    let fabric = Fabric::new(LinkProfile::link1(), 4);
    let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
    let mut v = DistVector::stripe_even(&mut pool, 16 * FRAME_BYTES, &servers).unwrap();
    // Fill each stripe with known u64 elements so the sums are checkable.
    for (i, (_, seg, len)) in v.stripes.iter().enumerate() {
        let elems = len / 8;
        let mut bytes = Vec::with_capacity(*len as usize);
        for k in 0..elems {
            bytes.extend(((i as u64 + 1) * 7 + k % 13).to_le_bytes());
        }
        pool.write_bytes(LogicalAddr::new(*seg, 0), &bytes).unwrap();
    }
    v.stripes.sort_by_key(|(n, _, _)| n.0);
    (pool, fabric, v)
}

fn main() {
    println!("distributed sum over a 32 MiB vector striped across 4 servers\n");
    let mut reference = None;
    for (name, strategy) in [("pull", Strategy::Pull), ("ship", Strategy::Ship)] {
        let (mut pool, mut fabric, v) = build();
        let timing = reduce_timed(
            &mut pool,
            &mut fabric,
            SimTime::ZERO,
            NodeId(0),
            &v,
            strategy,
            ScanParams::default(),
        )
        .expect("reduction runs");
        let value = reduce_value(&pool, &v, ReduceOp::Sum).expect("materialized sum");
        println!(
            "{name:>4}: sum={value}  completion={}  fabric bytes={}",
            timing.complete.duration_since(SimTime::ZERO),
            fmt_bytes(timing.fabric_bytes),
        );
        match reference {
            None => reference = Some(value),
            Some(r) => assert_eq!(r, value, "strategies must agree"),
        }
    }
    println!("\nboth strategies compute the same sum; shipping moves only the partials.");
}
