// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Coordination on the coherent region (§3.2/§5): LMPs keep most shared
//! memory non-coherent, but provide a few GBs of coherent memory for
//! synchronization. This example compares lock designs on that region by
//! the protocol traffic they generate under cross-server contention.
//!
//! Run with: `cargo run --example coordination`

use lmp::coherence::{
    CohortLock, CoherenceConfig, CoherentRegion, NumaRwLock, SpinLock, TicketLock,
};
use lmp::sim::units::MIB;

const NODES: u32 = 4;
const ROUNDS: u32 = 1_000;

fn main() {
    println!(
        "4 servers hammer one critical section {ROUNDS} times each on a\n\
         coherent region (16B granularity, switch-placed engine)\n"
    );
    println!("{:<22} {:>10} {:>12}", "design", "messages", "back-invals");

    // Test-and-set spinlock: every handoff transfers the word.
    {
        let mut r = CoherentRegion::new(CoherenceConfig::default_lmp(), MIB);
        let lock = SpinLock::new(0);
        for i in 0..(ROUNDS * NODES) {
            let node = i % NODES;
            let (ok, _) = lock.try_acquire(&mut r, node).expect("in region");
            assert!(ok, "uncontended in this serialized schedule");
            lock.release(&mut r, node).expect("held");
        }
        report("spinlock", &r);
    }

    // Ticket lock: FIFO, but the serving word still ping-pongs.
    {
        let mut r = CoherentRegion::new(CoherenceConfig::default_lmp(), MIB);
        let lock = TicketLock::new(0, 16);
        for i in 0..(ROUNDS * NODES) {
            let node = i % NODES;
            let (t, _) = lock.take_ticket(&mut r, node).expect("in region");
            let (ready, _) = lock.poll(&mut r, node, t).expect("in region");
            assert!(ready);
            lock.release(&mut r, node).expect("in region");
        }
        report("ticket", &r);
    }

    // Cohort lock: consecutive acquisitions from the same server hand off
    // locally. Drive it with node-clustered arrivals (the favourable and
    // realistic case: a server's threads burst).
    {
        let mut r = CoherentRegion::new(CoherenceConfig::default_lmp(), MIB);
        let mut lock = CohortLock::new(0, 16, NODES, 8);
        for round in 0..ROUNDS {
            let _ = round;
            for node in 0..NODES {
                for thread in 0..4u32 {
                    let (granted, _) = lock.acquire(&mut r, node, thread).expect("in region");
                    if !granted {
                        // Queued; the release below will reach it.
                    }
                }
            }
            let mut cur = lock.holder();
            while let Some((n, t)) = cur {
                let (next, _) = lock.release(&mut r, n, t).expect("held");
                cur = next;
            }
        }
        println!(
            "{:<22} {:>10} {:>12}   ({} local vs {} global handoffs)",
            "cohort (burst load)",
            r.total_cost().messages,
            r.total_cost().back_invalidations,
            lock.local_handoffs(),
            lock.global_handoffs(),
        );
    }

    // Reader-writer: distributed reader counters vs a central counter.
    {
        let mut central = CoherentRegion::new(CoherenceConfig::default_lmp(), MIB);
        let c = lmp::coherence::CentralRwLock::new(0, 16);
        for i in 0..(ROUNDS * NODES) {
            let node = i % NODES;
            assert!(c.read_acquire(&mut central, node).expect("in region").0);
            c.read_release(&mut central, node).expect("in region");
        }
        report("rwlock central", &central);

        let mut numa = CoherentRegion::new(CoherenceConfig::default_lmp(), MIB);
        let n = NumaRwLock::new(0, 16, NODES);
        for i in 0..(ROUNDS * NODES) {
            let node = i % NODES;
            assert!(n.read_acquire(&mut numa, node).expect("in region").0);
            n.read_release(&mut numa, node).expect("in region");
        }
        report("rwlock NUMA-aware", &numa);
    }
    println!(
        "\nNUMA-aware designs keep the hot words on their own server — the\n\
         scalable-coordination direction §5 points at for coherent memory."
    );
}

fn report(name: &str, r: &CoherentRegion) {
    println!(
        "{name:<22} {:>10} {:>12}",
        r.total_cost().messages,
        r.total_cost().back_invalidations
    );
}
