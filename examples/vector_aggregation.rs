// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! The paper's headline experiment in miniature: sum a vector in
//! disaggregated memory on all three deployments and compare bandwidth —
//! a one-size slice of Figures 2–5.
//!
//! Run with: `cargo run --release --example vector_aggregation [size_gb]`

use lmp::cluster::PoolArch;
use lmp::fabric::LinkProfile;
use lmp::sim::units::GIB;
use lmp::workloads::vector::run_point;

fn main() {
    let size_gb: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("numeric size in GB"))
        .unwrap_or(24);
    println!("vector aggregation, {size_gb} GB vector, 14 cores, 3 reps\n");
    println!("{:<6} {:<18} {:>12}", "Link", "Deployment", "Bandwidth");
    for link in [LinkProfile::link0(), LinkProfile::link1()] {
        for arch in [
            PoolArch::Logical,
            PoolArch::PhysicalCache,
            PoolArch::PhysicalNoCache,
        ] {
            let row = run_point(arch, link.clone(), size_gb * GIB, 3);
            let bw = match row.avg_gbps {
                Some(b) => format!("{b:9.1} GB/s"),
                None => "INFEASIBLE".to_string(),
            };
            println!("{:<6} {:<18} {:>12}", row.link, row.arch, bw);
        }
    }
    println!(
        "\nThe logical pool serves whatever fits a server's share at local\n\
         DRAM speed (~97 GB/s); the physical pool is capped by its fabric\n\
         link; and sizes beyond the physical pool's capacity only run on\n\
         the logical pool (try 96)."
    );
}
