// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Quickstart: build a logical pool, allocate a buffer, observe
//! local-vs-remote access speed, migrate the buffer, and watch the same
//! logical address become local.
//!
//! Run with: `cargo run --example quickstart`

use lmp::core::prelude::*;
use lmp::fabric::{Fabric, LinkProfile, MemOp, NodeId};
use lmp::mem::DramProfile;
use lmp::sim::prelude::*;

fn main() {
    // A 4-server rack; each server lends 24 GiB of its DRAM to the pool.
    let mut pool = LogicalPool::new(PoolConfig {
        servers: 4,
        capacity_per_server: 24 * GIB,
        shared_per_server: 24 * GIB,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 1024,
    });
    let mut fabric = Fabric::new(LinkProfile::link1(), 4);
    println!(
        "pool capacity: {} across {} servers",
        fmt_bytes(pool.pool_capacity_bytes()),
        pool.servers()
    );

    // Allocate a 1 GiB buffer near server 0 and write through its logical
    // address.
    let seg = pool
        .alloc(GIB, Placement::LocalFirst(NodeId(0)))
        .expect("pool has room");
    let addr = LogicalAddr::new(seg, 4096);
    pool.write_bytes(addr, b"hello, logical memory pools")
        .expect("write lands");
    println!(
        "allocated {} as {seg}, homed on {}",
        fmt_bytes(GIB),
        pool.holder_of(seg).unwrap()
    );

    // Server 0 reads it at local DRAM speed; server 2 pays the fabric.
    let local = pool
        .access(&mut fabric, SimTime::ZERO, NodeId(0), addr, 64, MemOp::Read)
        .expect("local read");
    let remote = pool
        .access(&mut fabric, SimTime::ZERO, NodeId(2), addr, 64, MemOp::Read)
        .expect("remote read");
    println!(
        "64B read latency: server0 (local) {} vs server2 (remote) {}",
        local.complete.duration_since(SimTime::ZERO),
        remote.complete.duration_since(SimTime::ZERO),
    );

    // Migrate the buffer to its remote user. The logical address is
    // untouched; only the translation changes.
    let report = migrate_segment(&mut pool, &mut fabric, SimTime::ZERO, seg, NodeId(2))
        .expect("destination has room");
    println!(
        "migrated {} to {} in {} ({} moved)",
        seg,
        report.to,
        report.complete.duration_since(SimTime::ZERO),
        fmt_bytes(report.bytes)
    );

    let after = pool
        .access(&mut fabric, report.complete, NodeId(2), addr, 64, MemOp::Read)
        .expect("now-local read");
    println!(
        "server2 read after migration: {} (local={})",
        after.complete.duration_since(report.complete),
        after.remote_bytes == 0,
    );
    let data = pool.read_bytes(addr, 27).expect("data survived");
    println!(
        "data at the same logical address: {:?}",
        String::from_utf8_lossy(&data)
    );
}
