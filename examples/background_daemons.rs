// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! The full §3.2 architecture in motion, driven by the event engine:
//! tenants replay phased access traces while the rack runtime's two
//! background daemons (locality balancing and shared-region sizing) run on
//! their own periods — all as events on one simulated clock.
//!
//! Run with: `cargo run --release --example background_daemons`

use lmp::core::prelude::*;
use lmp::fabric::{Fabric, LinkProfile, NodeId};
use lmp::mem::{DramProfile, FRAME_BYTES};
use lmp::sim::prelude::*;
use lmp::workloads::multitenant::{run, Tenant};
use lmp::workloads::trace::Pattern;

fn main() {
    // Deliberately conservative initial split: only 24 of 64 frames shared
    // per server. The sizing daemon will discover the real demands and grow
    // the shares (the OS floor is 8 frames); the balancer then pulls
    // spilled-but-hot buffers home.
    let mut pool = LogicalPool::new(PoolConfig {
        servers: 4,
        capacity_per_server: 64 * FRAME_BYTES,
        shared_per_server: 24 * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 256,
    });
    let mut fabric = Fabric::new(LinkProfile::link1(), 4);
    let mut rack = RackRuntime::new(
        &pool,
        RuntimeConfig {
            balance_period: SimDuration::from_micros(200),
            sizing_period: SimDuration::from_micros(400),
            balancer: BalancerConfig {
                min_remote_accesses: 16,
                hysteresis: 1.5,
                max_migrations_per_round: 8,
            },
            private_floors: Some(vec![8; 4]),
        },
    );

    let tenants = vec![
        Tenant {
            server: NodeId(0),
            working_set: 48 * FRAME_BYTES, // 2x the initial 24-frame share
            priority: 9,
            pattern: Pattern::Zipfian(1.1),
            ops_per_batch: 2_000,
        },
        Tenant {
            server: NodeId(1),
            working_set: 40 * FRAME_BYTES, // spills; its hot region rotates
            priority: 3,
            pattern: Pattern::PhasedHotspot { phases: 4 },
            ops_per_batch: 1_500,
        },
        Tenant {
            server: NodeId(2),
            working_set: 8 * FRAME_BYTES,
            priority: 1,
            pattern: Pattern::Sequential,
            ops_per_batch: 1_000,
        },
    ];

    let report = run(&mut pool, &mut fabric, &mut rack, &tenants, 6, 7)
        .expect("multi-tenant run completes");

    println!("simulated {} of rack time", report.complete);
    println!(
        "background daemons: {} migrations, {} sizing runs\n",
        report.migrations, report.sizing_runs
    );
    println!(
        "{:<8} {:>9} {:>14} {:>10} {:>10} {:>10}",
        "tenant", "server", "local bytes", "p50 ns", "p99 ns", "p999 ns"
    );
    for (i, t) in report.tenants.iter().enumerate() {
        println!(
            "{i:<8} {:>9} {:>13.1}% {:>10} {:>10} {:>10}",
            t.server,
            t.local_fraction * 100.0,
            t.latency.p50(),
            t.latency.p99(),
            t.latency.quantile(0.999),
        );
    }
    println!(
        "\nworking sets larger than the conservative initial share spill to other\n\
         servers; the sizing daemon grows the shares, and the balancer then\n\
         migrates the spilled (now hot) buffers home — watch the local\n\
         fraction climb across batches."
    );
}
