// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! A zipfian key-value store over the logical pool, with the locality
//! balancer migrating hot key segments toward their dominant client —
//! the paper's "NUMA migration" analogue working on a real application.
//!
//! Run with: `cargo run --release --example kv_rebalance`

use lmp::core::prelude::*;
use lmp::fabric::{Fabric, LinkProfile, NodeId};
use lmp::mem::{DramProfile, FRAME_BYTES};
use lmp::sim::prelude::*;
use lmp::workloads::kv::{KvConfig, KvStore, KvWorkload};

fn main() {
    let mut pool = LogicalPool::new(PoolConfig {
        servers: 4,
        capacity_per_server: 64 * FRAME_BYTES,
        shared_per_server: 48 * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 256,
    });
    let mut fabric = Fabric::new(LinkProfile::link1(), 4);

    let cfg = KvConfig {
        slots: 8192,
        slots_per_segment: 512,
        zipf_exponent: 1.1,
        write_fraction: 0.1,
        ..KvConfig::default()
    };
    let mut store = KvStore::create(&mut pool, cfg.clone()).expect("store fits");
    let mut workload = KvWorkload::new(&cfg, DetRng::new(2024));
    let mut balancer = LocalityBalancer::new(BalancerConfig {
        min_remote_accesses: 32,
        hysteresis: 2.0,
        max_migrations_per_round: 8,
    });

    // One dominant client (server 3) drives the store; the balancer runs
    // between batches like the paper's background task.
    let client = NodeId(3);
    let mut now = SimTime::ZERO;
    println!(
        "{:>5} {:>12} {:>14} {:>12}",
        "batch", "avg latency", "local ops", "migrations"
    );
    for batch in 0..8 {
        let (end, avg_ns) = workload
            .run(&mut store, &mut pool, &mut fabric, now, client, 4_000)
            .expect("ops run");
        now = end;
        println!(
            "{batch:>5} {:>10.0}ns {:>13.1}% {:>12}",
            avg_ns,
            store.local_fraction() * 100.0,
            balancer.migration_count()
        );
        let round = balancer.run_round(&mut pool, &mut fabric, now);
        for r in &round.executed {
            now = now.max(r.complete);
        }
    }
    println!(
        "\nhot segments migrated toward {client}: {} migrations, {} moved",
        balancer.migration_count(),
        fmt_bytes(balancer.bytes_moved())
    );
}
