// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Failure domains (§5): crash a server and watch mirrored and
//! parity-protected buffers survive with their logical addresses intact,
//! while unprotected buffers raise memory exceptions.
//!
//! Run with: `cargo run --example failure_recovery`

use lmp::core::prelude::*;
use lmp::fabric::{Fabric, LinkProfile, NodeId};
use lmp::mem::{DramProfile, FRAME_BYTES};
use lmp::sim::prelude::*;

fn main() {
    let mut pool = LogicalPool::new(PoolConfig {
        servers: 5,
        capacity_per_server: 32 * FRAME_BYTES,
        shared_per_server: 24 * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 64,
    });
    let mut fabric = Fabric::new(LinkProfile::link1(), 5);
    let mut pm = ProtectionManager::new();

    // Three buffers on server 0 with three protection levels.
    let unprotected = pool.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
    let mirrored = pool.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
    let coded = pool.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
    let peer1 = pool.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
    let peer2 = pool.alloc(FRAME_BYTES, Placement::On(NodeId(2))).unwrap();

    pm.mirror(&mut pool, &mut fabric, SimTime::ZERO, mirrored)
        .expect("replica placed");
    pm.protect_parity(&mut pool, &mut fabric, SimTime::ZERO, &[coded, peer1, peer2])
        .expect("parity placed");

    for (seg, text) in [
        (unprotected, &b"no protection"[..]),
        (mirrored, b"mirrored data"),
        (coded, b"erasure-coded"),
    ] {
        pm.write(&mut pool, LogicalAddr::new(seg, 0), text)
            .expect("write lands");
    }

    println!("crashing server 0 (holds all three primaries)…");
    let affected = pool.crash_server(NodeId(0));
    let report = pm.recover(&mut pool, &mut fabric, SimTime::ZERO, NodeId(0), &affected);
    println!(
        "recovery: promoted {:?}, reconstructed {:?}, lost {:?}, {} moved in {}",
        report.promoted,
        report.reconstructed,
        report.lost,
        fmt_bytes(report.bytes_transferred),
        report.complete.duration_since(SimTime::ZERO),
    );

    for (seg, label) in [
        (unprotected, "unprotected"),
        (mirrored, "mirrored"),
        (coded, "parity"),
    ] {
        match pool.read_bytes(LogicalAddr::new(seg, 0), 13) {
            Ok(data) => println!(
                "  {label:<12} -> OK: {:?} (now on {})",
                String::from_utf8_lossy(&data),
                pool.holder_of(seg).unwrap()
            ),
            Err(e) => println!("  {label:<12} -> memory exception: {e}"),
        }
    }
}
