// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Paper-scale smoke tests: run the actual figure configurations (full
//! 8–96 GB sizes — cheap, because timing simulation is data-free) and
//! assert the quantitative shapes the paper reports.

use lmp::cluster::PoolArch;
use lmp::fabric::LinkProfile;
use lmp::sim::units::GIB;
use lmp::workloads::vector::run_point;

fn gbps(arch: PoolArch, link: LinkProfile, size: u64) -> Option<f64> {
    run_point(arch, link, size, 2).avg_gbps
}

#[test]
fn figure2_8gb_ratios() {
    let l = gbps(PoolArch::Logical, LinkProfile::link1(), 8 * GIB).unwrap();
    let n = gbps(PoolArch::PhysicalNoCache, LinkProfile::link1(), 8 * GIB).unwrap();
    // Paper: "up to 4.7x improved bandwidth compared to Physical no-cache".
    let ratio = l / n;
    assert!((4.0..5.5).contains(&ratio), "8GB Link1 ratio {ratio:.2}");
    // Logical runs at local DRAM speed.
    assert!((l - 97.0).abs() < 3.0, "logical {l:.1} should be ~97");
}

#[test]
fn figure3_24gb_cache_ratio() {
    let l = gbps(PoolArch::Logical, LinkProfile::link1(), 24 * GIB).unwrap();
    let c = gbps(PoolArch::PhysicalCache, LinkProfile::link1(), 24 * GIB).unwrap();
    // Paper: "up to 3.4x compared to Physical cache for the 24GB vector".
    let ratio = l / c;
    assert!((2.8..4.2).contains(&ratio), "24GB Link1 cache ratio {ratio:.2}");
}

#[test]
fn figure4_64gb_42_percent() {
    let l = gbps(PoolArch::Logical, LinkProfile::link1(), 64 * GIB).unwrap();
    let c = gbps(PoolArch::PhysicalCache, LinkProfile::link1(), 64 * GIB).unwrap();
    // Paper: "42% higher bandwidth than Physical cache on Link1".
    let gain = l / c - 1.0;
    assert!(
        (0.30..0.60).contains(&gain),
        "64GB Link1 gain {:.0}%",
        gain * 100.0
    );
}

#[test]
fn figure5_96gb_feasibility() {
    assert!(gbps(PoolArch::Logical, LinkProfile::link1(), 96 * GIB).is_some());
    assert!(gbps(PoolArch::PhysicalCache, LinkProfile::link1(), 96 * GIB).is_none());
    assert!(gbps(PoolArch::PhysicalNoCache, LinkProfile::link1(), 96 * GIB).is_none());
    // Same on Link0.
    assert!(gbps(PoolArch::Logical, LinkProfile::link0(), 96 * GIB).is_some());
    assert!(gbps(PoolArch::PhysicalNoCache, LinkProfile::link0(), 96 * GIB).is_none());
}

#[test]
fn link0_upper_bounds_link1() {
    // Link0 is the paper's optimistic CXL bound: every physical-pool
    // number on Link0 must dominate its Link1 counterpart.
    for arch in [PoolArch::PhysicalCache, PoolArch::PhysicalNoCache] {
        for size in [8 * GIB, 24 * GIB, 64 * GIB] {
            let fast = gbps(arch, LinkProfile::link0(), size).unwrap();
            let slow = gbps(arch, LinkProfile::link1(), size).unwrap();
            assert!(
                fast >= slow,
                "{arch:?} {size}: Link0 {fast:.1} < Link1 {slow:.1}"
            );
        }
    }
}

#[test]
fn remote_links_cap_physical_bandwidth() {
    // Physical no-cache can never exceed the link's line rate.
    let n0 = gbps(PoolArch::PhysicalNoCache, LinkProfile::link0(), 8 * GIB).unwrap();
    let n1 = gbps(PoolArch::PhysicalNoCache, LinkProfile::link1(), 8 * GIB).unwrap();
    assert!(n0 <= 34.6, "no-cache Link0 {n0:.1} above line rate");
    assert!(n1 <= 21.1, "no-cache Link1 {n1:.1} above line rate");
}
