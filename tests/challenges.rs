// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! One test per §5 challenge: executable evidence that each of the five
//! "major challenges in realizing LMPs" has a working mechanism in this
//! implementation.

use lmp::coherence::{CoherenceConfig, CoherentRegion, SpinLock};
use lmp::core::prelude::*;
use lmp::fabric::{Fabric, LinkProfile, MemOp, NodeId};
use lmp::mem::{DramProfile, FRAME_BYTES};
use lmp::sim::prelude::*;

fn pool(servers: u32) -> (LogicalPool, Fabric) {
    let cfg = PoolConfig {
        servers,
        capacity_per_server: 32 * FRAME_BYTES,
        shared_per_server: 24 * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 64,
    };
    (
        LogicalPool::new(cfg),
        Fabric::new(LinkProfile::link1(), servers),
    )
}

/// Challenge 1 — cache coherence: a small coherent region with a bounded
/// snoop filter supports cross-server synchronization, and the filter
/// bound actually binds (back-invalidation under overflow) without ever
/// compromising mutual exclusion.
#[test]
fn challenge_cache_coherence() {
    let mut cfg = CoherenceConfig::default_lmp();
    cfg.filter_capacity = 8; // deliberately tiny
    let mut region = CoherentRegion::new(cfg, 64 * 1024);
    let lock = SpinLock::new(0);

    // Cross-server lock traffic interleaved with filter-thrashing loads.
    let mut acquisitions = 0;
    for round in 0..200u64 {
        let node = (round % 4) as u32;
        // Thrash the filter with unrelated blocks.
        region.load(node, 16 + (round % 32) * 16).unwrap();
        let (ok, _) = lock.try_acquire(&mut region, node).unwrap();
        assert!(ok, "serialized schedule: lock must be free");
        acquisitions += 1;
        // While held, nobody else can get it — even after back-invals.
        let (stolen, _) = lock.try_acquire(&mut region, (node + 1) % 4).unwrap();
        assert!(!stolen, "mutual exclusion violated under filter pressure");
        lock.release(&mut region, node).unwrap();
    }
    assert_eq!(acquisitions, 200);
    assert!(
        region.filter().back_invalidation_count() > 100,
        "the bounded filter should have been overflowing"
    );
}

/// Challenge 2 — sizing the shared regions: the periodic optimizer admits
/// a workload mix that a static split rejects, prioritizing the
/// high-value application for local placement.
#[test]
fn challenge_sizing() {
    let demands = [
        AppDemand {
            server: NodeId(0),
            bytes: 44 * FRAME_BYTES,
            priority: 10,
        },
        AppDemand {
            server: NodeId(1),
            bytes: 8 * FRAME_BYTES,
            priority: 1,
        },
    ];
    // Static 50/50 on 32-frame servers: 16 shareable each, 10-frame floor.
    let static_plan = solve_sizing(&[26, 26, 26], &[10, 10, 10], &demands);
    // (26 = floor 10 + static share 16.)
    assert!(!static_plan.feasible, "static split should reject 44+8 frames");
    // The optimizer can use everything above the floor.
    let opt = solve_sizing(&[32, 32, 32], &[10, 10, 10], &demands);
    assert!(opt.feasible);
    assert_eq!(
        opt.placements[0].local_frames, 22,
        "high-priority demand gets all of its server's shareable memory"
    );
}

/// Challenge 3 — locality balancing: performance counters (access bits)
/// identify hot remote data and migration converges without oscillation.
#[test]
fn challenge_locality_balancing() {
    let (mut p, mut f) = pool(3);
    let seg = p.alloc(2 * FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
    let addr = LogicalAddr::new(seg, 0);
    let mut bal = LocalityBalancer::new(BalancerConfig::default());
    // Server 2 uses the buffer heavily.
    for _ in 0..100 {
        p.access(&mut f, SimTime::ZERO, NodeId(2), addr, 64, MemOp::Read)
            .unwrap();
    }
    bal.run_round(&mut p, &mut f, SimTime::ZERO);
    assert_eq!(p.holder_of(seg), Some(NodeId(2)), "migrated to its user");
    // Continued use from the new home: stable.
    for _ in 0..5 {
        for _ in 0..100 {
            p.access(&mut f, SimTime::ZERO, NodeId(2), addr, 64, MemOp::Read)
                .unwrap();
        }
        let round = bal.run_round(&mut p, &mut f, SimTime::ZERO);
        assert!(round.executed.is_empty(), "oscillation");
    }
    assert_eq!(bal.migration_count(), 1);
}

/// Challenge 4 — address translation: two-step translation (coarse
/// replicated map + fine local map) keeps the global structure off the
/// hot path and survives migration with exactly one fault.
#[test]
fn challenge_address_translation() {
    let (mut p, mut f) = pool(3);
    let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
    let addr = LogicalAddr::new(seg, 128);
    // 100 accesses from server 1: the global map is consulted once.
    for _ in 0..100 {
        p.access(&mut f, SimTime::ZERO, NodeId(1), addr, 64, MemOp::Read)
            .unwrap();
    }
    assert_eq!(p.global_map().lookup_count(), 1, "TLB absorbs the rest");
    // Migration invalidates lazily: one fault, then steady state again.
    migrate_segment(&mut p, &mut f, SimTime::ZERO, seg, NodeId(2)).unwrap();
    let mut faults = 0;
    for _ in 0..100 {
        faults += p
            .access(&mut f, SimTime::ZERO, NodeId(1), addr, 64, MemOp::Read)
            .unwrap()
            .faults;
    }
    assert_eq!(faults, 1);
    assert_eq!(p.global_map().lookup_count(), 2);
}

/// Challenge 5 — failure domains: all three §5 remedies in one rack:
/// replication masks a crash, erasure coding masks a crash at lower
/// storage cost, and unprotected memory surfaces exceptions.
#[test]
fn challenge_failure_domains() {
    let (mut p, mut f) = pool(5);
    let mut pm = ProtectionManager::new();
    let mirrored = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
    let coded = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
    let coded_peer = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
    let bare = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
    pm.mirror(&mut p, &mut f, SimTime::ZERO, mirrored).unwrap();
    pm.protect_parity(&mut p, &mut f, SimTime::ZERO, &[coded, coded_peer])
        .unwrap();
    for (seg, data) in [(mirrored, &b"AA"[..]), (coded, b"BB"), (bare, b"CC")] {
        pm.write(&mut p, LogicalAddr::new(seg, 0), data).unwrap();
    }

    let affected = p.crash_server(NodeId(0));
    let report = pm.recover(&mut p, &mut f, SimTime::ZERO, NodeId(0), &affected);

    assert_eq!(report.promoted, vec![mirrored]);
    assert_eq!(report.reconstructed, vec![coded]);
    assert_eq!(report.lost, vec![bare]);
    assert_eq!(p.read_bytes(LogicalAddr::new(mirrored, 0), 2).unwrap(), b"AA");
    assert_eq!(p.read_bytes(LogicalAddr::new(coded, 0), 2).unwrap(), b"BB");
    assert!(matches!(
        p.read_bytes(LogicalAddr::new(bare, 0), 2),
        Err(PoolError::SegmentLost(_))
    ));
}

/// Interplay: protection must survive migration — migrate a mirrored
/// primary, crash its *new* home, and recover from the untouched replica.
#[test]
fn protection_survives_migration() {
    let (mut p, mut f) = pool(4);
    let mut pm = ProtectionManager::new();
    let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
    pm.mirror(&mut p, &mut f, SimTime::ZERO, seg).unwrap();
    pm.write(&mut p, LogicalAddr::new(seg, 7), b"durable").unwrap();

    let replica_home = p.holder_of(pm.replica(seg).unwrap()).unwrap();
    // Migrate the primary somewhere that is not the replica's server.
    let dst = (0..4)
        .map(NodeId)
        .find(|n| *n != replica_home && *n != NodeId(0))
        .unwrap();
    migrate_segment(&mut p, &mut f, SimTime::ZERO, seg, dst).unwrap();

    let affected = p.crash_server(dst);
    let report = pm.recover(&mut p, &mut f, SimTime::ZERO, dst, &affected);
    assert_eq!(report.promoted, vec![seg]);
    assert_eq!(
        p.read_bytes(LogicalAddr::new(seg, 7), 7).unwrap(),
        b"durable"
    );
}

/// Interplay: a double crash inside one parity group loses the data (the
/// scheme's designed limit) and says so, rather than fabricating bytes.
#[test]
fn parity_double_crash_is_honest() {
    let (mut p, mut f) = pool(5);
    let mut pm = ProtectionManager::new();
    let a = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
    let b = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
    let c = p.alloc(FRAME_BYTES, Placement::On(NodeId(2))).unwrap();
    pm.protect_parity(&mut p, &mut f, SimTime::ZERO, &[a, b, c])
        .unwrap();

    // Crash two member servers at once; only then recover.
    let mut affected = p.crash_server(NodeId(0));
    affected.extend(p.crash_server(NodeId(1)));
    let report = pm.recover(&mut p, &mut f, SimTime::ZERO, NodeId(0), &affected);
    assert!(report.lost.contains(&a) || report.lost.contains(&b));
    assert!(report.reconstructed.len() < 2, "cannot rebuild both");
}
