// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Cross-crate integration tests: whole-deployment scenarios exercising
//! the public API the way the examples and benches do.

use lmp::cluster::{Cluster, ClusterConfig, ClusterError, PoolArch};
use lmp::compute::{reduce_timed, reduce_value, DistVector, ReduceOp, ScanParams, Strategy};
use lmp::core::prelude::*;
use lmp::fabric::{Fabric, LinkProfile, MemOp, NodeId};
use lmp::mem::{DramProfile, FRAME_BYTES};
use lmp::sim::prelude::*;
use lmp::workloads::kv::{KvConfig, KvStore, KvWorkload};

fn small_cluster(arch: PoolArch) -> Cluster {
    let mut cfg = ClusterConfig::paper(arch, LinkProfile::link1());
    cfg.local_per_server = match arch {
        PoolArch::Logical => 24 * FRAME_BYTES,
        _ => 8 * FRAME_BYTES,
    };
    cfg.pool_capacity = match arch {
        PoolArch::Logical => 0,
        _ => 64 * FRAME_BYTES,
    };
    Cluster::new(cfg)
}

/// The qualitative ordering behind Figures 2–4: Logical ≥ PhysicalCache ≥
/// PhysicalNoCache for a working set that fits one server's share.
#[test]
fn architecture_ordering_small_working_set() {
    let size = 8 * FRAME_BYTES;
    let mut results = Vec::new();
    for arch in [
        PoolArch::Logical,
        PoolArch::PhysicalCache,
        PoolArch::PhysicalNoCache,
    ] {
        let mut c = small_cluster(arch);
        let r = c.run_aggregation(size, NodeId(0), 4).unwrap();
        results.push((arch, r.avg_bandwidth_gbps));
    }
    assert!(
        results[0].1 >= results[1].1 && results[1].1 >= results[2].1,
        "ordering violated: {results:?}"
    );
    assert!(
        results[0].1 / results[2].1 > 3.0,
        "logical advantage too small: {results:?}"
    );
}

/// Figure 5 end to end: the same oversized workload is infeasible on both
/// physical deployments and runs on the logical one — and after shrinking
/// the logical pool's shared regions it becomes infeasible there too,
/// then feasible again after the §4.5 resize.
#[test]
fn flexibility_scenario() {
    let size = 96 * FRAME_BYTES;
    for arch in [PoolArch::PhysicalCache, PoolArch::PhysicalNoCache] {
        let mut c = small_cluster(arch);
        assert!(matches!(
            c.alloc_vector(size, NodeId(0)),
            Err(ClusterError::Infeasible { .. })
        ));
    }
    let mut c = small_cluster(PoolArch::Logical);
    let h = c.alloc_vector(size, NodeId(0)).unwrap();
    c.free_vector(h).unwrap();

    // Shrink every server's shared region to 16 frames: now infeasible.
    {
        let pool = c.logical_pool().unwrap();
        for s in 0..4 {
            pool.resize_shared(NodeId(s), 16 * FRAME_BYTES).unwrap();
        }
    }
    assert!(matches!(
        c.alloc_vector(size, NodeId(0)),
        Err(ClusterError::Infeasible { .. })
    ));
    // Grow them back — the knob physical pools do not have.
    {
        let pool = c.logical_pool().unwrap();
        for s in 0..4 {
            pool.resize_shared(NodeId(s), 24 * FRAME_BYTES).unwrap();
        }
    }
    assert!(c.alloc_vector(size, NodeId(0)).is_ok());
}

/// Near-memory pipeline: correctness and speed of compute shipping on a
/// striped vector, end to end through pool + fabric + compute.
#[test]
fn compute_shipping_end_to_end() {
    let mut pool = LogicalPool::new(PoolConfig {
        servers: 4,
        capacity_per_server: 24 * FRAME_BYTES,
        shared_per_server: 16 * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 64,
    });
    let mut fabric = Fabric::new(LinkProfile::link1(), 4);
    let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
    let v = DistVector::stripe_even(&mut pool, 8 * FRAME_BYTES, &servers).unwrap();
    for (i, (_, seg, _)) in v.stripes.iter().enumerate() {
        let vals: Vec<u8> = (i as u64 + 1).to_le_bytes().to_vec();
        pool.write_bytes(LogicalAddr::new(*seg, 0), &vals).unwrap();
    }
    let expect = 1 + 2 + 3 + 4;
    assert_eq!(reduce_value(&pool, &v, ReduceOp::Sum).unwrap(), expect);

    let pull = reduce_timed(
        &mut pool, &mut fabric, SimTime::ZERO, NodeId(0), &v, Strategy::Pull,
        ScanParams { cores: 4, chunk: FRAME_BYTES, ..ScanParams::default() },
    )
    .unwrap();
    let (mut pool2, mut fabric2) = (
        LogicalPool::new(PoolConfig {
            servers: 4,
            capacity_per_server: 24 * FRAME_BYTES,
            shared_per_server: 16 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 64,
        }),
        Fabric::new(LinkProfile::link1(), 4),
    );
    let v2 = DistVector::stripe_even(&mut pool2, 8 * FRAME_BYTES, &servers).unwrap();
    let ship = reduce_timed(
        &mut pool2, &mut fabric2, SimTime::ZERO, NodeId(0), &v2, Strategy::Ship,
        ScanParams { cores: 4, chunk: FRAME_BYTES, ..ScanParams::default() },
    )
    .unwrap();
    assert!(ship.complete < pull.complete);
}

/// Crash-under-load: a KV store with mirrored segments keeps serving after
/// a server crash; unprotected keys raise exceptions.
#[test]
fn crash_recovery_under_kv_load() {
    let mut pool = LogicalPool::new(PoolConfig {
        servers: 4,
        capacity_per_server: 64 * FRAME_BYTES,
        shared_per_server: 48 * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 64,
    });
    let mut fabric = Fabric::new(LinkProfile::link1(), 4);
    let cfg = KvConfig {
        slots: 1024,
        slots_per_segment: 128,
        ..KvConfig::default()
    };
    let mut kv = KvStore::create(&mut pool, cfg.clone()).unwrap();
    let mut pm = ProtectionManager::new();

    // Write some keys, protect every segment that landed on server 1.
    for key in 0..1024 {
        kv.put(
            &mut pool,
            &mut fabric,
            SimTime::ZERO,
            NodeId(0),
            key,
            &key.to_le_bytes(),
        )
        .unwrap();
    }
    let victim = NodeId(1);
    let on_victim = pool.global_map().segments_on(victim);
    assert!(!on_victim.is_empty(), "round-robin placed segments there");
    for seg in &on_victim {
        pm.mirror(&mut pool, &mut fabric, SimTime::ZERO, *seg).unwrap();
    }
    // Mirror writes must go through the manager from here on; re-put keys
    // to sync replicas (cheap way to exercise protected writes).
    for key in 0..1024u64 {
        let addr = LogicalAddr::new(kv.segment_of(key).unwrap(), (key % 128) * 256);
        pm.write(&mut pool, addr, &key.to_le_bytes()).unwrap();
    }

    let affected = pool.crash_server(victim);
    let report = pm.recover(&mut pool, &mut fabric, SimTime::ZERO, victim, &affected);
    assert!(report.lost.is_empty(), "all victim segments were mirrored");

    // Every key reads back its value.
    for key in 0..1024u64 {
        let (v, _) = kv
            .get(&mut pool, &mut fabric, SimTime::ZERO, NodeId(2), key)
            .unwrap();
        assert_eq!(&v[..8], &key.to_le_bytes());
    }
}

/// Determinism: two identical runs (same seed, same config) produce
/// byte-identical outcomes across the whole stack.
#[test]
fn whole_stack_determinism() {
    let run = || {
        let mut pool = LogicalPool::new(PoolConfig {
            servers: 4,
            capacity_per_server: 64 * FRAME_BYTES,
            shared_per_server: 48 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 64,
        });
        let mut fabric = Fabric::new(LinkProfile::link1(), 4);
        let cfg = KvConfig::default();
        let mut kv = KvStore::create(&mut pool, cfg.clone()).unwrap();
        let mut w = KvWorkload::new(&cfg, DetRng::new(99));
        let (end, avg) = w
            .run(&mut kv, &mut pool, &mut fabric, SimTime::ZERO, NodeId(1), 2_000)
            .unwrap();
        let mut bal = LocalityBalancer::new(BalancerConfig::default());
        let round = bal.run_round(&mut pool, &mut fabric, end);
        (
            end.as_nanos(),
            avg.to_bits(),
            round.executed.len(),
            pool.access_counts(),
        )
    };
    assert_eq!(run(), run());
}

/// The balancer interacts correctly with migration mid-access-stream:
/// accesses before and after a migration see consistent data and the
/// fault counter reflects exactly one stale translation per mover.
#[test]
fn migration_during_access_stream() {
    let mut pool = LogicalPool::new(PoolConfig {
        servers: 3,
        capacity_per_server: 16 * FRAME_BYTES,
        shared_per_server: 12 * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 16,
    });
    let mut fabric = Fabric::new(LinkProfile::link1(), 3);
    let seg = pool.alloc(2 * FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
    let addr = LogicalAddr::new(seg, 100);
    pool.write_bytes(addr, b"stable").unwrap();

    let mut now = SimTime::ZERO;
    let mut faults = 0;
    for i in 0..10 {
        if i == 5 {
            let r = migrate_segment(&mut pool, &mut fabric, now, seg, NodeId(2)).unwrap();
            now = r.complete;
        }
        let a = pool
            .access(&mut fabric, now, NodeId(1), addr, 64, MemOp::Read)
            .unwrap();
        faults += a.faults;
        now = a.complete;
        assert_eq!(pool.read_bytes(addr, 6).unwrap(), b"stable");
    }
    assert_eq!(faults, 1, "exactly one stale translation");
}
