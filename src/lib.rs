// Tests may unwrap/expect freely; production code must not (see crates/lint).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # lmp — Logical Memory Pools
//!
//! A Rust implementation and evaluation harness for **"Logical Memory
//! Pools: Flexible and Local Disaggregated Memory"** (HotNets '23): a
//! memory-disaggregation architecture that carves the rack's memory pool
//! out of each server's local DRAM instead of deploying a separate memory
//! appliance.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `lmp-sim` | deterministic discrete-event kernel, time, stats |
//! | [`fabric`] | `lmp-fabric` | CXL-like links (Table 1/2 profiles), switch, incast |
//! | [`mem`] | `lmp-mem` | frames, DRAM timing, private/shared regions, hotness |
//! | [`coherence`] | `lmp-coherence` | directory MSI, snoop filter, coherent-memory locks |
//! | [`physical`] | `lmp-physical` | the physical-pool baseline + §4.2 cost model |
//! | [`core`] | `lmp-core` | **the contribution**: logical pool, translation, migration, sizing, failure masking |
//! | [`compute`] | `lmp-compute` | scans, data placement, compute shipping |
//! | [`cluster`] | `lmp-cluster` | the three §4.1 deployments behind one interface |
//! | [`workloads`] | `lmp-workloads` | vector aggregation, zipfian KV, BFS, traces |
//! | [`telemetry`] | `lmp-telemetry` | metric registry, sim-time spans, deterministic snapshots |
//!
//! ## Quickstart
//!
//! ```
//! use lmp::cluster::{Cluster, ClusterConfig, PoolArch};
//! use lmp::fabric::{LinkProfile, NodeId};
//! use lmp::sim::units::GIB;
//!
//! // The paper's Logical deployment: 4 servers × 24 GB over Link1.
//! let mut cluster = Cluster::new(ClusterConfig::paper(
//!     PoolArch::Logical,
//!     LinkProfile::link1(),
//! ));
//! // One server sums an 8 GB vector with 14 cores, once.
//! let result = cluster.run_aggregation(8 * GIB, NodeId(0), 1).unwrap();
//! assert!(result.avg_bandwidth_gbps > 90.0, "local-speed pool access");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use lmp_cluster as cluster;
pub use lmp_coherence as coherence;
pub use lmp_compute as compute;
pub use lmp_core as core;
pub use lmp_fabric as fabric;
pub use lmp_mem as mem;
pub use lmp_physical as physical;
pub use lmp_sim as sim;
pub use lmp_telemetry as telemetry;
pub use lmp_workloads as workloads;
