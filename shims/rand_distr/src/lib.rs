//! Offline stand-in for `rand_distr`, covering exactly what this workspace
//! uses: the [`Distribution`] trait and a [`Zipf`] sampler.
//!
//! The Zipf sampler here inverts the CDF of the continuous bounded power
//! law ∝ x^−s on `[1, n+1)` and floors the result — a bounded-Pareto
//! approximation of the discrete zipfian. It is deterministic, monotone in
//! the underlying uniform draw, O(1) per sample, and has the heavy-head
//! skew the workload generators rely on; it is not bit-compatible with
//! upstream `rand_distr`'s rejection sampler (nothing in this workspace
//! depends on that).

use rand::Rng;

/// A distribution samplable with any [`Rng`].
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZipfError {
    /// The number of elements must be positive.
    NTooSmall,
    /// The exponent must be non-negative and finite.
    STooSmall,
}

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZipfError::NTooSmall => write!(f, "zipf needs at least one element"),
            ZipfError::STooSmall => write!(f, "zipf exponent must be non-negative and finite"),
        }
    }
}

impl std::error::Error for ZipfError {}

/// Zipf-like distribution over `{1, …, n}` with exponent `s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf<F> {
    n: u64,
    s: F,
    /// Precomputed `(n+1)^(1-s)` (unused when `s == 1`).
    hi_pow: F,
}

impl Zipf<f64> {
    /// Distribution over `{1, …, n}` with exponent `s ≥ 0`.
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n == 0 {
            return Err(ZipfError::NTooSmall);
        }
        if !(s.is_finite() && s >= 0.0) {
            return Err(ZipfError::STooSmall);
        }
        let hi_pow = ((n + 1) as f64).powf(1.0 - s);
        Ok(Zipf { n, s, hi_pow })
    }
}

impl Distribution<f64> for Zipf<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>();
        let x = if (self.s - 1.0).abs() < 1e-12 {
            // Density ∝ 1/x: inverse CDF is (n+1)^u.
            ((self.n + 1) as f64).powf(u)
        } else {
            // Inverse CDF of x^-s on [1, n+1).
            let one_minus_s = 1.0 - self.s;
            (1.0 + u * (self.hi_pow - 1.0)).powf(1.0 / one_minus_s)
        };
        // Floor to the discrete rank; clamp for boundary rounding.
        x.floor().clamp(1.0, self.n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipf::new(100, 1.1).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = z.sample(&mut rng);
            assert!((1.0..=100.0).contains(&v), "out of domain: {v}");
            assert_eq!(v, v.floor(), "non-integral sample: {v}");
        }
    }

    #[test]
    fn skews_toward_small_ranks() {
        let z = Zipf::new(1000, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let head = (0..n)
            .filter(|_| z.sample(&mut rng) <= 10.0)
            .count() as f64;
        // Under uniform, P(≤10) = 1%; zipf s=1 concentrates far more.
        assert!(head / n as f64 > 0.2, "head mass {}", head / n as f64);
    }

    #[test]
    fn near_zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(100, 1e-9).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| z.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 50.5).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(64, 0.9).unwrap();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert_eq!(Zipf::new(0, 1.0), Err(ZipfError::NTooSmall));
        assert_eq!(Zipf::new(10, -1.0), Err(ZipfError::STooSmall));
        assert_eq!(Zipf::new(10, f64::NAN), Err(ZipfError::STooSmall));
    }
}
