//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of the proptest API that this workspace's property tests use:
//! the [`Strategy`](strategy::Strategy) trait (ranges, tuples, `Just`,
//! `prop_map`, weighted unions, a small regex subset for `&str`),
//! `any::<T>()`, `collection::vec`, [`ProptestConfig`](test_runner::ProptestConfig),
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!`
//! macros.
//!
//! Differences from upstream, deliberately accepted:
//! - **No shrinking.** A failing case reports its case index and the
//!   per-test seed; reruns are fully deterministic, so the failure
//!   reproduces exactly.
//! - **Deterministic by construction.** Each generated test derives its RNG
//!   seed from the test's name, so a given binary always explores the same
//!   cases. This is a feature here: the workspace's tier-1 suite must be
//!   reproducible run-to-run.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values for property tests. Unlike upstream there is
    /// no value tree / shrinking; `generate` returns a final value.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    /// Box a strategy; used by `prop_oneof!` to unify arm types.
    pub fn box_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between boxed strategies, as built by `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Build from `(weight, strategy)` arms. Panics if empty or all
        /// weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                let w = *w as u64;
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights summed to total")
        }
    }

    macro_rules! impl_range_strategy_uint {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    impl_range_strategy_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_strategy_int {
        ($($t:ty : $u:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                    (self.start as $u).wrapping_add(rng.below(span) as $u) as $t
                }
            }
        )*};
    }
    impl_range_strategy_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.unit_f64() as $t;
                    self.start + u * (self.end - self.start)
                }
            }
        )*};
    }
    impl_range_strategy_float!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($t:ident . $idx:tt),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// `&str` strategies interpret the string as a small regex subset:
    /// literal characters, `[a-z0-9_]`-style classes (ranges and single
    /// chars), `.` for printable ASCII, each optionally repeated with
    /// `{m}` or `{m,n}`. This covers the patterns used in this workspace
    /// (e.g. `"[a-z]{1,12}"`).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom into a set of candidate characters.
            let candidates: Vec<char> = match chars[i] {
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            assert!(lo <= hi, "bad class range in {pattern:?}");
                            set.extend((lo..=hi).filter(|c| c.is_ascii()));
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in {pattern:?}");
                    i += 1; // consume ']'
                    set
                }
                '.' => {
                    i += 1;
                    (' '..='~').collect()
                }
                '\\' => {
                    assert!(i + 1 < chars.len(), "trailing escape in {pattern:?}");
                    let c = chars[i + 1];
                    i += 2;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional {m} / {m,n} repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated repetition") + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad repeat"),
                        n.trim().parse::<usize>().expect("bad repeat"),
                    ),
                    None => {
                        let m = body.trim().parse::<usize>().expect("bad repeat");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(!candidates.is_empty(), "empty atom in {pattern:?}");
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                out.push(candidates[rng.below(candidates.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Draw a value from the full domain of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only: property tests here treat f64 as data,
            // not as an IEEE edge-case hunt.
            rng.unit_f64() * 2e9 - 1e9
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            (rng.unit_f64() * 2e9 - 1e9) as f32
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated data readable in failures.
            (b' ' + rng.below(95) as u8) as char
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Number of elements for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vec of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-`proptest!` block configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the tier-1 suite quick
            // while still exploring a meaningful slice of each domain.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic xoshiro256++ generator used by all strategies.
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed from a test name so every property gets a distinct but
        /// stable stream.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name, then SplitMix64 to fill the state.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Self::from_seed(h)
        }

        /// Seed from a 64-bit value via SplitMix64 expansion.
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9e3779b97f4a7c15;
            }
            TestRng { s }
        }

        /// Next raw 64-bit output (xoshiro256++).
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, bound)` via multiply-shift.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform draw in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Prints the failing case index if a property panics; disarmed on
    /// success. Poor man's replacement for proptest's failure persistence.
    pub struct CaseGuard {
        case: u32,
        name: &'static str,
        armed: bool,
    }

    impl CaseGuard {
        /// Guard reporting `name`/`case` if dropped during a panic.
        pub fn new(name: &'static str, case: u32) -> Self {
            CaseGuard { case, name, armed: true }
        }

        /// Mark the case as passed.
        pub fn disarm(mut self) {
            self.armed = false;
        }
    }

    impl Drop for CaseGuard {
        fn drop(&mut self) {
            if self.armed && std::thread::panicking() {
                eprintln!(
                    "proptest shim: property `{}` failed at case {} \
                     (deterministic; rerun reproduces exactly)",
                    self.name, self.case
                );
            }
        }
    }
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__cfg.cases {
                let __guard =
                    $crate::test_runner::CaseGuard::new(stringify!($name), __case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                { $body }
                __guard.disarm();
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Assert inside a property; alias for `assert!` (no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property; alias for `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property; alias for `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::box_strategy($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(1.0f64..2.0), &mut rng);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn string_pattern_subset() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::generate(&"ab[0-9]{2}", &mut rng);
            assert_eq!(t.len(), 4);
            assert!(t.starts_with("ab"));
            assert!(t[2..].chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![
            2 => Just(0u64),
            1 => (1u64..10).prop_map(|v| v * 100),
        ];
        let mut rng = TestRng::from_seed(3);
        let mut saw_zero = false;
        let mut saw_mapped = false;
        for _ in 0..200 {
            match Strategy::generate(&strat, &mut rng) {
                0 => saw_zero = true,
                v if (100..1000).contains(&v) && v % 100 == 0 => saw_mapped = true,
                v => panic!("unexpected value {v}"),
            }
        }
        assert!(saw_zero && saw_mapped);
    }

    #[test]
    fn collection_vec_sizes() {
        let strat = crate::collection::vec(0u8..10, 3..6);
        let mut rng = TestRng::from_seed(9);
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((3..6).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[allow(clippy::len_zero)]
        fn macro_generates_cases(
            n in 1u64..100,
            mut v in crate::collection::vec(any::<u8>(), 1..8),
            label in "[a-z]{1,4}",
        ) {
            v.push(n as u8);
            prop_assert!(v.len() >= 2);
            prop_assert!(label.len() >= 1 && label.len() <= 4);
            prop_assert_eq!(*v.last().unwrap(), n as u8);
        }
    }
}
