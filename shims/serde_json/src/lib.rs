//! Offline stand-in for `serde_json`. The workspace only serializes
//! (JSON-lines result output), so this exposes `to_string` and
//! `to_string_pretty` over the shim `serde::Serialize` trait; the error
//! type exists for signature compatibility and is never produced.

/// Serialization error. The shim serializer is infallible, so this is
/// never constructed; it exists so call sites can keep `?`/`unwrap()`.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Render `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Render `value` as JSON. The shim does not pretty-print; output is the
/// same compact form as [`to_string`], which remains valid JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    to_string(value)
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trips_through_serialize() {
        assert_eq!(super::to_string(&vec![1u8, 2]).unwrap(), "[1,2]");
        assert_eq!(super::to_string("x").unwrap(), "\"x\"");
    }
}
