//! Offline stand-in for `serde_derive`.
//!
//! Derives the shim `serde::Serialize` (JSON-only) and marker
//! `serde::Deserialize` for the struct shapes this workspace actually
//! declares: named-field structs, tuple structs (newtypes serialize as
//! their inner value, wider tuples as arrays), and unit structs, with
//! lifetime and plain type parameters. Enums and `#[serde(...)]`
//! attributes are intentionally unsupported — nothing in the workspace
//! uses them — and produce a compile error rather than wrong output.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructShape {
    name: String,
    /// Generic parameter declarations, e.g. `'a, T`.
    generics_decl: String,
    /// Generic arguments for the self type, e.g. `'a, T`.
    generics_args: String,
    /// Type parameter names (need `Serialize` bounds).
    type_params: Vec<String>,
    fields: Fields,
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Split the token trees of a delimited group on top-level commas.
fn split_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0i32;
    for t in tokens {
        match &t {
            TokenTree::Punct(p) if depth == 0 && p.as_char() == ',' => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Drop leading attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn strip_attrs_and_vis(tokens: &mut Vec<TokenTree>) {
    loop {
        match tokens.first() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.remove(0);
                // The bracketed attribute body.
                if matches!(tokens.first(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    tokens.remove(0);
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.remove(0);
                if matches!(tokens.first(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    tokens.remove(0);
                }
            }
            _ => break,
        }
    }
}

fn parse_struct(input: TokenStream) -> Result<StructShape, String> {
    let mut tokens: Vec<TokenTree> = input.into_iter().collect();
    strip_attrs_and_vis(&mut tokens);

    match tokens.first() {
        Some(TokenTree::Ident(i)) if i.to_string() == "struct" => {
            tokens.remove(0);
        }
        Some(TokenTree::Ident(i)) if i.to_string() == "enum" || i.to_string() == "union" => {
            return Err(format!(
                "the offline serde shim only derives for structs, not {i}s"
            ));
        }
        _ => return Err("expected a struct definition".to_string()),
    }

    let name = match tokens.first() {
        Some(TokenTree::Ident(i)) => {
            let n = i.to_string();
            tokens.remove(0);
            n
        }
        _ => return Err("expected a struct name".to_string()),
    };

    // Optional generics: collect everything between the outermost < >.
    let mut generics_tokens: Vec<TokenTree> = Vec::new();
    if matches!(tokens.first(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        tokens.remove(0);
        let mut depth = 1i32;
        while let Some(t) = tokens.first().cloned() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            tokens.remove(0);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            generics_tokens.push(t);
            tokens.remove(0);
        }
        if depth != 0 {
            return Err("unbalanced generics".to_string());
        }
    }

    let mut decl_parts = Vec::new();
    let mut arg_parts = Vec::new();
    let mut type_params = Vec::new();
    for param in split_commas(generics_tokens) {
        if param.is_empty() {
            continue;
        }
        let is_lifetime = matches!(&param[0], TokenTree::Punct(p) if p.as_char() == '\'');
        // Declaration keeps the full token run (bounds included). A `'`
        // punct must stay glued to the ident that follows it, or the
        // generated impl fails to re-parse.
        let mut decl = String::new();
        let mut glue = false;
        for t in &param {
            if !decl.is_empty() && !glue {
                decl.push(' ');
            }
            decl.push_str(&t.to_string());
            glue = matches!(t, TokenTree::Punct(p) if p.as_char() == '\'');
        }
        decl_parts.push(decl);
        if is_lifetime {
            let name = param
                .get(1)
                .map(|t| t.to_string())
                .ok_or("malformed lifetime parameter")?;
            arg_parts.push(format!("'{name}"));
        } else {
            match &param[0] {
                TokenTree::Ident(i) if i.to_string() == "const" => {
                    let name = param
                        .get(1)
                        .map(|t| t.to_string())
                        .ok_or("malformed const parameter")?;
                    arg_parts.push(name);
                }
                TokenTree::Ident(i) => {
                    let name = i.to_string();
                    type_params.push(name.clone());
                    arg_parts.push(name);
                }
                _ => return Err("unsupported generic parameter".to_string()),
            }
        }
    }

    // A where clause can precede the body of tuple structs; skip tokens
    // until the field group or the trailing semicolon.
    let fields = loop {
        match tokens.first() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut names = Vec::new();
                for mut field in split_commas(inner) {
                    strip_attrs_and_vis(&mut field);
                    if field.is_empty() {
                        continue;
                    }
                    match &field[0] {
                        TokenTree::Ident(i) => names.push(i.to_string()),
                        _ => return Err("unsupported field shape".to_string()),
                    }
                }
                break Fields::Named(names);
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let count = split_commas(inner)
                    .into_iter()
                    .filter(|f| !f.is_empty())
                    .count();
                break Fields::Tuple(count);
            }
            Some(_) => {
                tokens.remove(0);
            }
            None => break Fields::Unit,
        }
    };

    Ok(StructShape {
        name,
        generics_decl: decl_parts.join(", "),
        generics_args: arg_parts.join(", "),
        type_params,
        fields,
    })
}

fn impl_header(shape: &StructShape, trait_path: &str) -> String {
    let decl = if shape.generics_decl.is_empty() {
        String::new()
    } else {
        format!("<{}>", shape.generics_decl)
    };
    let args = if shape.generics_args.is_empty() {
        String::new()
    } else {
        format!("<{}>", shape.generics_args)
    };
    let bounds = if shape.type_params.is_empty() {
        String::new()
    } else {
        let list: Vec<String> = shape
            .type_params
            .iter()
            .map(|p| format!("{p}: {trait_path}"))
            .collect();
        format!(" where {}", list.join(", "))
    };
    format!(
        "impl{decl} {trait_path} for {}{args}{bounds}",
        shape.name
    )
}

/// Derive the shim `serde::Serialize` (JSON rendering) for a struct.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let body = match &shape.fields {
        Fields::Named(names) => {
            let mut b = String::from("out.push('{');\n");
            for (i, n) in names.iter().enumerate() {
                if i > 0 {
                    b.push_str("out.push(',');\n");
                }
                b.push_str(&format!(
                    "out.push_str(\"\\\"{n}\\\":\");\n::serde::Serialize::serialize_json(&self.{n}, out);\n"
                ));
            }
            b.push_str("out.push('}');");
            b
        }
        Fields::Tuple(1) => "::serde::Serialize::serialize_json(&self.0, out);".to_string(),
        Fields::Tuple(n) => {
            let mut b = String::from("out.push('[');\n");
            for i in 0..*n {
                if i > 0 {
                    b.push_str("out.push(',');\n");
                }
                b.push_str(&format!(
                    "::serde::Serialize::serialize_json(&self.{i}, out);\n"
                ));
            }
            b.push_str("out.push(']');");
            b
        }
        Fields::Unit => "out.push_str(\"null\");".to_string(),
    };
    let header = impl_header(&shape, "::serde::Serialize");
    format!(
        "{header} {{\n    fn serialize_json(&self, out: &mut ::std::string::String) {{\n{body}\n    }}\n}}"
    )
    .parse()
    .unwrap()
}

/// Derive the shim marker `serde::Deserialize` for a struct.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let header = impl_header(&shape, "::serde::Deserialize");
    format!("{header} {{}}").parse().unwrap()
}
