//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's `harness = false` bench
//! targets use — [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`BatchSize`], and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! median-of-samples wall-clock timer instead of upstream's statistical
//! machinery. Results print one line per benchmark.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much setup output to batch per timing, mirroring upstream's enum.
/// The shim times one routine call per batch regardless, so the variants
/// only exist for call-site compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    /// Median nanoseconds per iteration, recorded by `iter`/`iter_batched`.
    sample_ns: f64,
}

const WARMUP_ITERS: u64 = 3;
const SAMPLES: usize = 15;
const ITERS_PER_SAMPLE: u64 = 32;

impl Bencher {
    /// Time `routine` and record its per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..ITERS_PER_SAMPLE {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / ITERS_PER_SAMPLE as f64);
        }
        self.sample_ns = median(&mut samples);
    }

    /// Time `routine` over fresh `setup` output each call; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_nanos() as f64);
        }
        self.sample_ns = median(&mut samples);
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn report(name: &str, ns: f64) {
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!("{name:<50} time: {value:>10.3} {unit}/iter");
}

/// Top-level benchmark registry, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run and report a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { sample_ns: 0.0 };
        f(&mut b);
        report(&id.to_string(), b.sample_ns);
        self
    }

    /// Open a named group; benchmarks report as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into() }
    }

    /// Total measurement time hint; accepted and ignored by the shim.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Sample count hint; accepted and ignored by the shim.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Upstream parses CLI args here; the shim has none to parse.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Upstream prints a summary here; the shim reports per-benchmark.
    pub fn final_summary(&mut self) {}
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run and report one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { sample_ns: 0.0 };
        f(&mut b);
        report(&format!("{}/{id}", self.name), b.sample_ns);
        self
    }

    /// Throughput hint; accepted and ignored by the shim.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Close the group. A no-op beyond upstream-API compatibility.
    pub fn finish(self) {}
}

/// Throughput annotation, for call-site compatibility.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Bundle benchmark functions into a runnable group, as upstream does.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config.configure_from_args();
            $($target(&mut c);)+
            c.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs >= WARMUP_ITERS + SAMPLES as u64 * ITERS_PER_SAMPLE);
    }

    #[test]
    fn iter_batched_gets_fresh_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
