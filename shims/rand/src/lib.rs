//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation of the `rand` API
//! surface it actually uses: [`RngCore`], [`SeedableRng`], the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), and
//! [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 rather than
//! ChaCha12 — different stream than upstream `rand`, but every consumer in
//! this workspace only relies on *determinism* (same seed ⇒ same stream),
//! which this preserves on every platform.

use std::ops::Range;

/// Error type for fallible generation (never produced by [`rngs::StdRng`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill (infallible for every generator in this workspace).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` seed (the only entry point this workspace
    /// uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut s = state;
        for chunk in bytes.chunks_mut(8) {
            s = splitmix64(s);
            for (b, sb) in chunk.iter_mut().zip(s.to_le_bytes()) {
                *b = sb;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible uniformly from raw bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}
impl Standard for u16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 16) as u16
    }
}
impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value in the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded draw; bias is < 2^-64 per draw,
                // far below anything a simulation statistic can observe.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + v as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f32::draw(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of `T` (over `T`'s full domain; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p.clamp(0.0, 1.0)
    }

    /// Fill `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for upstream's
    /// ChaCha12-based `StdRng`; same-seed-same-stream is all this
    /// workspace relies on).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen_range(1.0..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_range_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| r.gen_range(0..100u64)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 49.5).abs() < 1.0, "mean {mean}");
    }
}
