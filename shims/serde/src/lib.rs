//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, and this workspace only
//! ever uses serde to render flat result rows as JSON lines (via
//! `serde_json::to_string`). This shim therefore collapses the data model:
//! [`Serialize`] renders straight to a JSON string and [`Deserialize`] is a
//! marker (nothing in the workspace parses). The `derive` feature provides
//! `#[derive(Serialize, Deserialize)]` for plain structs through the
//! sibling `serde_derive` shim.

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Render `self` as JSON into `out`.
pub trait Serialize {
    /// Append the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Marker for types that upstream serde could deserialize. This workspace
/// never parses, so no methods are needed.
pub trait Deserialize {}

macro_rules! impl_serialize_display_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_serialize_display_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    // `{}` prints the shortest roundtrip representation;
                    // add ".0" to integral values as serde_json does.
                    let s = format!("{self}");
                    let integral = !s.contains(['.', 'e', 'E']);
                    out.push_str(&s);
                    if integral {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_serialize_float!(f32, f64);

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        escape_into(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        escape_into(self, out);
    }
}
impl Deserialize for String {}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        escape_into(&self.to_string(), out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

fn serialize_seq<'a, T: Serialize + 'a>(
    items: impl IntoIterator<Item = &'a T>,
    out: &mut String,
) {
    out.push('[');
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out)
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}
impl_serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

fn serialize_map<'a, K: AsRef<str> + 'a, V: Serialize + 'a>(
    entries: impl IntoIterator<Item = (&'a K, &'a V)>,
    out: &mut String,
) {
    out.push('{');
    for (i, (k, v)) in entries.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(k.as_ref(), out);
        out.push(':');
        v.serialize_json(out);
    }
    out.push('}');
}

impl<K: AsRef<str>, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        serialize_map(self.iter(), out)
    }
}

impl<K: AsRef<str>, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_json(&self, out: &mut String) {
        // Deterministic output: sort keys before emitting.
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by(|a, b| a.0.as_ref().cmp(b.0.as_ref()));
        serialize_map(entries, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize + ?Sized>(v: &T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn scalars() {
        assert_eq!(json(&7u64), "7");
        assert_eq!(json(&-3i32), "-3");
        assert_eq!(json(&true), "true");
        assert_eq!(json(&1.5f64), "1.5");
        assert_eq!(json(&2.0f64), "2.0");
        assert_eq!(json(&f64::NAN), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(json("hi"), "\"hi\"");
        assert_eq!(json("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn sequences_and_options() {
        assert_eq!(json(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(json(&[1.5f64][..]), "[1.5]");
        assert_eq!(json(&Some(4u8)), "4");
        assert_eq!(json(&None::<u8>), "null");
    }

    #[test]
    fn maps_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        assert_eq!(json(&m), "{\"a\":1,\"b\":2}");
    }
}
